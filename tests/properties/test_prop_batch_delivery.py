"""Property tests pinning the batched delivery API to the singular one.

``Network.transmit_batch`` must be *event-for-event* equivalent to N
single ``transmit`` calls under a fixed seed: the same heap entries with
the same sequence numbers, the same loss draws in the same order, the same
captures, counters and delivered bytes — including fragmented trains and
spoofed injections.  The property builds two identically seeded worlds,
drives one with singular calls and the other with one batch, and compares
every observable.

A second block pins the spoofed-query crafting fast path (precomputed word
sums, arithmetic fold) byte-identical to the generic ``encode_udp`` tower
it replaced.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.capture import PacketCapture
from repro.netsim.network import Link, Network
from repro.netsim.packet import IPProtocol, IPv4Packet
from repro.netsim.simulator import Simulator
from repro.netsim.udp import (
    UDPDatagram,
    _address_word_sum,
    encode_udp,
    payload_word_sum,
    udp_checksum,
    udp_checksum_arith,
    udp_checksum_from_sums,
)

HOST_IPS = ("10.0.0.1", "10.0.0.2", "10.0.0.3")
UNKNOWN_IP = "172.16.0.9"


def build_world(loss: float):
    simulator = Simulator(seed=11)
    network = Network(simulator, default_latency=0.01)
    hosts = {}
    received = []
    for ip in HOST_IPS:
        host = network.add_host(f"h-{ip}", ip)
        host.bind(53, lambda payload, src, port, _ip=ip: received.append((_ip, payload, src, port)))
        hosts[ip] = host
    if loss:
        network.set_link(HOST_IPS[0], HOST_IPS[1], Link(latency=0.01, loss_probability=loss))
    capture = PacketCapture(name="prop")
    network.attach_capture(capture)
    return simulator, network, received, capture


#: One generated "send": (src index, dst index-or-unknown, payload length,
#: corrupt checksum?, fragmented?, spoofed inject?).
sends = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=120),
    st.booleans(),
    st.booleans(),
    st.booleans(),
)


def build_packets(plan) -> list[tuple[IPv4Packet, bool]]:
    """Materialise one (packet, spoofed?) list from a generated plan.

    Fragmented sends become two-fragment trains sharing an IPID, so the
    defrag path (bucket creation, reassembly, spoofed-fragment counting)
    is exercised by both delivery shapes.
    """
    packets: list[tuple[IPv4Packet, bool]] = []
    for index, (src_i, dst_i, size, corrupt, fragment, spoof) in enumerate(plan):
        src = HOST_IPS[src_i]
        dst = UNKNOWN_IP if dst_i == 3 else HOST_IPS[dst_i]
        body = bytes((index + offset) & 0xFF for offset in range(size))
        checksum_src = "9.9.9.9" if corrupt else src
        payload = encode_udp(checksum_src, dst, UDPDatagram(4000, 53, body))
        ipid = index & 0xFFFF
        if fragment and len(payload) >= 16:
            boundary = (len(payload) // 2) & ~0x7
            if boundary >= 8:
                first = IPv4Packet(
                    src=src,
                    dst=dst,
                    protocol=IPProtocol.UDP,
                    payload=payload[:boundary],
                    ipid=ipid,
                    more_fragments=True,
                )
                second = IPv4Packet(
                    src=src,
                    dst=dst,
                    protocol=IPProtocol.UDP,
                    payload=payload[boundary:],
                    ipid=ipid,
                    fragment_offset=boundary // 8,
                )
                packets.append((first, spoof))
                packets.append((second, spoof))
                continue
        packets.append(
            (
                IPv4Packet.udp(src, dst, payload, ipid),
                spoof,
            )
        )
    return packets


def observable_state(simulator, network, received, capture, hosts_of):
    return {
        "received": list(received),
        "now": simulator.now,
        "sequence": simulator._sequence,
        "events_processed": simulator.events_processed,
        "transmitted": network.packets_transmitted,
        "dropped": network.packets_dropped,
        "captured": [
            (c.time, c.packet.src, c.packet.dst, c.packet.payload, c.packet.ipid)
            for c in capture.packets
        ],
        "host_stats": [
            (
                host.stats.udp_received,
                host.stats.udp_checksum_failures,
                host.defrag.stats.fragments_received,
                host.defrag.stats.packets_reassembled,
                host.defrag.stats.spoofed_fragments_used,
            )
            for host in hosts_of()
        ],
    }


class TestTransmitBatchEquivalence:
    @given(st.lists(sends, min_size=1, max_size=25), st.sampled_from([0.0, 0.35]))
    @settings(max_examples=60, deadline=None)
    def test_batch_is_event_for_event_equivalent_to_singles(self, plan, loss):
        # World A: N singular transmit/inject calls.
        sim_a, net_a, recv_a, cap_a = build_world(loss)
        for packet, spoof in build_packets(plan):
            if spoof:
                net_a.inject(packet)
            else:
                net_a.transmit(packet)
        sim_a.run()
        state_a = observable_state(sim_a, net_a, recv_a, cap_a, net_a.hosts)

        # World B: the same burst through the batched entry points, split
        # into one inject_batch (spoofed) per contiguous run to preserve
        # ordering exactly as the singular interleaving produced it.
        sim_b, net_b, recv_b, cap_b = build_world(loss)
        pending: list[IPv4Packet] = []
        pending_spoof: bool | None = None

        def flush():
            nonlocal pending, pending_spoof
            if not pending:
                return
            if pending_spoof:
                net_b.inject_batch(pending)
            else:
                net_b.transmit_batch(pending)
            pending = []
            pending_spoof = None

        for packet, spoof in build_packets(plan):
            if pending_spoof is not None and spoof != pending_spoof:
                flush()
            pending.append(packet)
            pending_spoof = spoof
        flush()
        sim_b.run()
        state_b = observable_state(sim_b, net_b, recv_b, cap_b, net_b.hosts)

        assert state_a == state_b

    @given(st.lists(sends, min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_receive_batch_equivalent_to_sequential_receive(self, plan):
        sim_a, net_a, recv_a, _ = build_world(0.0)
        target_a = net_a.host(HOST_IPS[1])
        sim_b, net_b, recv_b, _ = build_world(0.0)
        target_b = net_b.host(HOST_IPS[1])
        packets_a = [p for p, _ in build_packets(plan)]
        packets_b = [p.copy() for p in packets_a]
        for packet in packets_a:
            target_a.receive(packet)
        target_b.receive_batch(packets_b)
        assert recv_a == recv_b
        assert target_a.stats.udp_received == target_b.stats.udp_received
        assert (
            target_a.stats.udp_checksum_failures
            == target_b.stats.udp_checksum_failures
        )


class TestChecksumFastPathsPinned:
    addresses = st.sampled_from(
        ["10.0.0.1", "192.0.2.53", "203.0.113.17", "66.6.6.1", "255.255.255.254"]
    )
    ports = st.integers(min_value=0, max_value=0xFFFF)
    payloads = st.binary(min_size=0, max_size=256)

    @given(addresses, addresses, ports, ports, payloads)
    @settings(max_examples=200)
    def test_arith_checksum_matches_cached(self, src, dst, sport, dport, payload):
        datagram = UDPDatagram(sport, dport, payload)
        assert udp_checksum_arith(src, dst, sport, dport, payload) == udp_checksum(
            src, dst, datagram
        )

    @given(addresses, addresses, ports, ports, payloads)
    @settings(max_examples=200)
    def test_checksum_from_sums_matches_cached(self, src, dst, sport, dport, payload):
        expected = udp_checksum(src, dst, UDPDatagram(sport, dport, payload))
        observed = udp_checksum_from_sums(
            _address_word_sum(src),
            _address_word_sum(dst),
            sport,
            dport,
            8 + len(payload),
            payload_word_sum(payload),
        )
        assert observed == expected

    @given(st.floats(min_value=0.0, max_value=4_000_000.0, allow_nan=False))
    @settings(max_examples=100)
    def test_spoofed_query_crafting_matches_encode_udp(self, now):
        """The remover's crafted spoofed query is byte-identical to the
        generic UDP encode tower it replaced."""
        from repro.ntp.packet import NTPPacket, NTP_PORT

        victim, server = "192.0.2.101", "203.0.113.7"
        wire = NTPPacket.client_query_wire(now)
        reference = encode_udp(
            victim, server, UDPDatagram(NTP_PORT, NTP_PORT, wire)
        )

        from repro.core import rate_limit_abuse as rla

        remover = object.__new__(rla.AssociationRemover)
        remover.victim_ip = victim
        remover._wire_time = None
        remover._wire = b""
        remover._wire_sum = 0
        remover._query_payload(now)
        campaign = rla.RemovalCampaign(
            server_ip=server, victim_ip=victim, started_at=0.0
        )
        packet = remover._craft_query(campaign)
        assert packet.payload == reference
        assert packet.src == victim and packet.dst == server
