"""Small formatting helpers for printing paper-style tables from benchmarks."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_percentage(value: float, decimals: int = 2) -> str:
    """Render a fraction as a percentage string, e.g. ``0.694 -> '69.40%'``."""
    return f"{value * 100:.{decimals}f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table (used by the benchmark output)."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
