"""Shared machinery for every NTP client model.

The base client implements the life cycle every implementation shares:

1. **Boot** — resolve the configured pool domain(s) through the system's DNS
   resolver and create associations to the returned addresses.  This lookup
   is the boot-time attack surface: if the resolver's cache is poisoned the
   client synchronises to the attacker from its very first sample.
2. **Polling** — send a mode 3 query to each usable association every poll
   interval, track reachability with ntpd's 8-bit shift register, and record
   offset samples from mode 4 responses.
3. **Discipline** — combine samples (median across associations for NTP,
   the single server for SNTP), slew small offsets, and *step* the clock
   only after a large offset persists for ``step_delay`` seconds (clients
   step immediately at boot, which is exactly why boot-time attacks are so
   effective).
4. **Replacement** — when a server stops answering for ``unreachable_after``
   consecutive polls it is declared unreachable; clients that support
   run-time DNS lookups then re-query the pool domain, which is the hook the
   run-time attack exploits after poisoning the resolver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dns.stub import ResolutionResult, StubResolver
from repro.netsim.host import Host
from repro.netsim.simulator import Simulator
from repro.ntp.association import Association, AssociationState
from repro.ntp.clock import SystemClock
from repro.ntp.errors import NTPPacketError
from repro.ntp.packet import NTPMode, NTPPacket, NTP_PORT
from repro.ntp.timestamps import unix_from_wire


@dataclass
class NTPClientConfig:
    """Behavioural parameters of a client model.

    The defaults are ntpd-like; each client model overrides what differs.
    Durations interact to produce the attack times of Table II: removing one
    association costs roughly ``unreachable_after * poll_interval`` seconds,
    and adopting the attacker's time costs roughly ``step_delay`` more.
    """

    pool_domains: list[str] = field(default_factory=lambda: ["pool.ntp.org"])
    desired_associations: int = 4
    min_associations: int = 1
    max_associations: int = 10
    poll_interval: float = 64.0
    poll_jitter: float = 0.05
    response_timeout: float = 2.0
    unreachable_after: int = 8
    remove_unreachable: bool = True
    runtime_dns: bool = True
    sntp: bool = False
    step_threshold: float = 0.128
    step_delay: float = 300.0
    min_step_samples: int = 4
    boot_step_immediately: bool = True
    panic_threshold: Optional[float] = None
    panic_at_boot: bool = False
    dns_cached_servers: int = 0
    act_as_server: bool = False
    slew_gain: float = 0.5


@dataclass
class ClientStats:
    """Counters describing what the client did (used by the experiments)."""

    boot_dns_lookups: int = 0
    runtime_dns_lookups: int = 0
    polls_sent: int = 0
    responses_received: int = 0
    kods_received: int = 0
    associations_created: int = 0
    associations_removed: int = 0
    steps_applied: int = 0
    panics: int = 0


class BaseNTPClient:
    """Common implementation of the client models.

    Subclasses normally override only :meth:`default_config` and, where the
    real implementation behaves differently, the ``_on_unreachable`` or
    ``_runtime_lookup_domains`` hooks.
    """

    #: Name used in Table I.
    client_name = "generic"
    #: Fraction of pool.ntp.org clients using this implementation [Rytilahti et al.].
    pool_usage_share: Optional[float] = None
    #: Whether the implementation is vulnerable to the boot-time attack.
    supports_boot_time_attack = True
    #: Whether the implementation performs DNS lookups at run time.
    supports_runtime_attack = False

    def __init__(
        self,
        host: Host,
        simulator: Simulator,
        resolver_ip: str,
        config: Optional[NTPClientConfig] = None,
        initial_clock_offset: float = 0.0,
        name: str = "",
    ) -> None:
        self.host = host
        self.simulator = simulator
        self.config = config or self.default_config()
        self.name = name or f"{self.client_name}@{host.ip}"
        self.clock = SystemClock(offset=initial_clock_offset, created_at=simulator.now)
        self.stub = StubResolver(host, simulator, resolver_ip)
        self.stats = ClientStats()
        self.associations: dict[str, Association] = {}
        self.started = False
        self.booted_at: Optional[float] = None
        self._rng = simulator.spawn_rng()
        self._large_offset_since: Optional[float] = None
        self._large_offset_samples = 0
        self._cached_server_list: list[str] = []
        self._poll_event = None
        port = NTP_PORT if self.config.act_as_server else 0
        self.socket = host.bind(port, self._on_packet)
        #: Outstanding polls: server ip -> (poll time, transmit timestamp).
        self._pending: dict[str, tuple] = {}

    # ------------------------------------------------------------ overrides
    @classmethod
    def default_config(cls) -> NTPClientConfig:
        """The implementation's default configuration."""
        return NTPClientConfig()

    def _runtime_lookup_domains(self) -> list[str]:
        """Domains to query when a run-time DNS lookup is triggered."""
        return list(self.config.pool_domains)

    # ----------------------------------------------------------------- boot
    def start(self) -> None:
        """Boot the client: resolve the pool domains and begin polling."""
        if self.started:
            return
        self.started = True
        self.booted_at = self.simulator.now
        for domain in self.config.pool_domains:
            self.stats.boot_dns_lookups += 1
            self.stub.resolve(domain, lambda result, d=domain: self._on_dns_result(result, d, boot=True))
        # Every implementation takes its first samples shortly after boot
        # ("iburst"-style) rather than waiting a full poll interval; the
        # recurring schedule is set up by the first poll round itself.
        initial_delay = min(5.0, self.config.poll_interval)
        self._poll_event = self.simulator.schedule(
            initial_delay, self._poll_round, label=f"{self.name} first poll"
        )

    def stop(self) -> None:
        """Stop polling (used by one-shot clients and test teardown)."""
        if self._poll_event is not None:
            self._poll_event.cancel()
            self._poll_event = None
        self.started = False

    # ----------------------------------------------------------------- DNS
    def _on_dns_result(self, result: ResolutionResult, domain: str, boot: bool) -> None:
        if not result.ok:
            return
        if self.config.dns_cached_servers > 0:
            self._cached_server_list = list(
                result.addresses[: self.config.dns_cached_servers]
            )
        self._add_servers(result.addresses, domain)

    def _add_servers(self, addresses: list[str], domain: str) -> None:
        limit = self.config.max_associations
        target = self.config.desired_associations
        for address in addresses:
            if len(self._usable_associations()) >= target:
                break
            active_count = len(
                [
                    a
                    for a in self.associations.values()
                    if a.state is not AssociationState.REMOVED
                ]
            )
            if active_count >= limit and address not in self.associations:
                break
            if address in self.associations:
                existing = self.associations[address]
                if existing.state is AssociationState.REMOVED:
                    existing.state = AssociationState.ACTIVE
                    existing.consecutive_failures = 0
                continue
            self.associations[address] = Association(
                server_ip=address,
                source_domain=domain,
                created_at=self.simulator.now,
            )
            self.stats.associations_created += 1

    def trigger_runtime_dns(self) -> None:
        """Issue the run-time DNS lookups that replace lost servers."""
        if not self.config.runtime_dns:
            return
        for domain in self._runtime_lookup_domains():
            self.stats.runtime_dns_lookups += 1
            self.stub.resolve(
                domain, lambda result, d=domain: self._on_dns_result(result, d, boot=False)
            )

    # -------------------------------------------------------------- polling
    def _schedule_poll(self) -> None:
        jitter = float(self._rng.uniform(0, self.config.poll_interval * self.config.poll_jitter))
        self._poll_event = self.simulator.schedule(
            self.config.poll_interval + jitter, self._poll_round, label=f"{self.name} poll"
        )

    def _poll_round(self) -> None:
        if not self.started:
            return
        targets = self._poll_targets()
        for association in targets:
            self._send_poll(association)
        self._schedule_poll()

    def _poll_targets(self) -> list[Association]:
        usable = self._usable_associations()
        if self.config.sntp:
            return usable[:1]
        return usable

    def _send_poll(self, association: Association) -> None:
        association.polls_sent += 1
        self.stats.polls_sent += 1
        query = NTPPacket.client_query(self.clock.time(self.simulator.now))
        poll_time = self.simulator.now
        self._pending[association.server_ip] = (poll_time, query.transmit_timestamp)
        self.socket.sendto(query.encode(), association.server_ip, NTP_PORT)
        self.simulator.schedule(
            self.config.response_timeout,
            lambda ip=association.server_ip, at=poll_time: self._check_timeout(ip, at),
            label=f"{self.name} poll-timeout",
        )

    def _check_timeout(self, server_ip: str, poll_time: float) -> None:
        pending = self._pending.get(server_ip)
        if pending is None or pending[0] != poll_time:
            return
        del self._pending[server_ip]
        association = self.associations.get(server_ip)
        if association is None or not association.is_usable():
            return
        association.record_failure()
        self._after_failure(association)

    # ------------------------------------------------------------- receive
    def _on_packet(self, payload: bytes, src_ip: str, src_port: int) -> None:
        try:
            packet = NTPPacket.decode(payload)
        except NTPPacketError:
            return
        if packet.mode is NTPMode.CLIENT:
            self._serve_time(packet, src_ip, src_port)
            return
        if packet.mode is not NTPMode.SERVER:
            return
        association = self.associations.get(src_ip)
        if association is None:
            return
        pending = self._pending.get(src_ip)
        if pending is None or packet.origin_timestamp != pending[1]:
            # Responses whose origin timestamp does not echo one of our own
            # outstanding queries are discarded (RFC 5905 packet sanity
            # checks).  This is what makes the server's replies to the
            # attacker's *spoofed* queries harmless to the client state.
            return
        self._pending.pop(src_ip, None)
        if packet.is_kiss_of_death:
            self.stats.kods_received += 1
            association.record_kod()
            self._after_failure(association)
            return
        now = self.simulator.now
        transmit = packet.transmit_timestamp
        offset = unix_from_wire(transmit.seconds, transmit.fraction) - self.clock.time(now)
        association.record_success(offset)
        self.stats.responses_received += 1
        self._discipline()

    def _serve_time(self, query: NTPPacket, src_ip: str, src_port: int) -> None:
        """Answer a mode 3 query when acting as a server (refid leak)."""
        if not self.config.act_as_server:
            return
        peer = self.system_peer()
        response = NTPPacket.server_response(
            query,
            server_time=self.clock.time(self.simulator.now),
            stratum=3,
            reference_id=peer.server_ip if peer else "",
        )
        self.socket.sendto(response.encode(), src_ip, src_port)

    # ----------------------------------------------------------- discipline
    def _selected_offset(self) -> Optional[float]:
        candidates = [
            assoc.last_offset
            for assoc in self._usable_associations()
            if assoc.reachable and assoc.last_offset is not None
        ]
        if not candidates:
            return None
        if self.config.sntp:
            return candidates[0]
        ordered = sorted(candidates)
        middle = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2

    def _discipline(self) -> None:
        offset = self._selected_offset()
        if offset is None:
            return
        now = self.simulator.now
        if abs(offset) <= self.config.step_threshold:
            self._large_offset_since = None
            self._large_offset_samples = 0
            self.clock.slew(offset * self.config.slew_gain, now)
            return

        at_boot = self._in_boot_window()
        if self.config.panic_threshold is not None and abs(offset) > self.config.panic_threshold:
            if not at_boot or self.config.panic_at_boot:
                self.stats.panics += 1
                return

        if at_boot and self.config.boot_step_immediately:
            self._apply_step(offset, now)
            return

        if self._large_offset_since is None:
            self._large_offset_since = now
            self._large_offset_samples = 0
        self._large_offset_samples += 1
        persisted = now - self._large_offset_since
        if (
            persisted >= self.config.step_delay
            and self._large_offset_samples >= self.config.min_step_samples
        ):
            self._apply_step(offset, now)

    def _apply_step(self, offset: float, now: float) -> None:
        self.clock.step(offset, now)
        self.stats.steps_applied += 1
        self._large_offset_since = None
        self._large_offset_samples = 0

    def _in_boot_window(self) -> bool:
        if self.booted_at is None:
            return False
        return self.stats.steps_applied == 0 and self.stats.responses_received <= max(
            4, self.config.min_step_samples
        )

    # ------------------------------------------------------------ failures
    def _after_failure(self, association: Association) -> None:
        if association.consecutive_failures < self.config.unreachable_after:
            return
        if association.state is AssociationState.ACTIVE:
            association.state = AssociationState.UNREACHABLE
        self._on_unreachable(association)

    def _on_unreachable(self, association: Association) -> None:
        """Default reaction: drop the server and re-query DNS if we fell low."""
        if self.config.remove_unreachable:
            association.state = AssociationState.REMOVED
            self.stats.associations_removed += 1
        if (
            self.config.runtime_dns
            and len(self._usable_associations()) < self.config.min_associations
        ):
            self.trigger_runtime_dns()

    # ----------------------------------------------------------- inspection
    def _usable_associations(self) -> list[Association]:
        return [a for a in self.associations.values() if a.is_usable()]

    def usable_server_ips(self) -> list[str]:
        """Addresses of servers the client currently polls."""
        return [a.server_ip for a in self._usable_associations()]

    def system_peer(self) -> Optional[Association]:
        """The association currently driving the clock.

        Selection is sticky, as in ntpd: the current system peer keeps its
        role until it becomes unusable or unreachable, at which point the
        best remaining candidate takes over.  Stickiness matters for attack
        scenario P2 — the reference id leaks exactly one upstream server at a
        time, and the attacker only learns the next one after removing the
        current one.
        """
        current = getattr(self, "_system_peer_ip", None)
        if current is not None:
            association = self.associations.get(current)
            if (
                association is not None
                and association.is_usable()
                and association.reachable
                and association.last_offset is not None
            ):
                return association
        reachable = [
            a for a in self._usable_associations() if a.reachable and a.last_offset is not None
        ]
        if not reachable:
            self._system_peer_ip = None
            return None
        selected = min(reachable, key=lambda a: abs(a.last_offset or 0.0))
        self._system_peer_ip = selected.server_ip
        return selected

    def clock_error(self) -> float:
        """Signed clock error versus true (simulated) time, in seconds."""
        return self.clock.error(self.simulator.now)

    def synchronised_to(self, addresses: set[str]) -> bool:
        """True when every reachable usable server is in ``addresses``."""
        usable = [a.server_ip for a in self._usable_associations() if a.reachable]
        return bool(usable) and all(ip in addresses for ip in usable)

    def describe(self) -> dict:
        """A summary dictionary used by examples and reports."""
        return {
            "client": self.client_name,
            "associations": len(self._usable_associations()),
            "clock_error": self.clock_error(),
            "steps": self.stats.steps_applied,
            "runtime_dns_lookups": self.stats.runtime_dns_lookups,
        }
