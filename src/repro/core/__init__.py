"""The paper's contribution: off-path DNS-based time-shifting attacks on NTP.

The package is organised along the attack pipeline of the paper:

* :mod:`repro.core.attacker` — the off-path attacker's resources (a querying
  host, a pool of addresses, malicious NTP servers with a shifted clock),
* :mod:`repro.core.checksum_fix` — crafting a replacement second fragment
  whose ones'-complement sum matches the original so the UDP checksum in the
  (untouched) first fragment still verifies (section III-3),
* :mod:`repro.core.ipid_prediction` — sampling and extrapolating the
  nameserver's IPID sequence (section III-2),
* :mod:`repro.core.fragment_attack` — the DNS defragmentation-cache
  poisoning primitive that injects attacker A records for ``pool.ntp.org``
  into a victim resolver (section III),
* :mod:`repro.core.rate_limit_abuse` and :mod:`repro.core.server_discovery`
  — removing a victim client's existing associations by abusing NTP server
  rate limiting, and discovering which servers to attack (section IV-B),
* :mod:`repro.core.boot_time`, :mod:`repro.core.run_time`,
  :mod:`repro.core.chronos_attack` — the end-to-end attack orchestrations of
  sections IV-A, IV-B and VI-C,
* :mod:`repro.core.probability` — the analytic success-probability model
  behind Table III, with a Monte-Carlo cross-check.
"""

from repro.core.attacker import Attacker, AttackerResources
from repro.core.checksum_fix import (
    craft_matching_fragment,
    checksum_correction,
    apply_correction,
)
from repro.core.ipid_prediction import IPIDPredictor, IPIDObservation
from repro.core.fragment_attack import (
    DNSFragmentPoisoner,
    PoisoningPlan,
    PoisoningOutcome,
)
from repro.core.rate_limit_abuse import AssociationRemover, RemovalCampaign
from repro.core.server_discovery import (
    discover_via_pool_enumeration,
    discover_via_refid_leak,
    discover_via_config_interface,
)
from repro.core.boot_time import BootTimeAttack, BootTimeAttackResult
from repro.core.run_time import RunTimeAttack, RunTimeAttackResult, RunTimeScenario
from repro.core.chronos_attack import (
    ChronosAttack,
    ChronosAttackResult,
    max_honest_lookups_tolerated,
    addresses_needed_to_dominate,
)
from repro.core.probability import (
    probability_scenario1,
    probability_scenario2,
    required_removals,
    table3_rows,
    monte_carlo_scenario1,
    monte_carlo_scenario2,
)

__all__ = [
    "Attacker",
    "AttackerResources",
    "craft_matching_fragment",
    "checksum_correction",
    "apply_correction",
    "IPIDPredictor",
    "IPIDObservation",
    "DNSFragmentPoisoner",
    "PoisoningPlan",
    "PoisoningOutcome",
    "AssociationRemover",
    "RemovalCampaign",
    "discover_via_pool_enumeration",
    "discover_via_refid_leak",
    "discover_via_config_interface",
    "BootTimeAttack",
    "BootTimeAttackResult",
    "RunTimeAttack",
    "RunTimeAttackResult",
    "RunTimeScenario",
    "ChronosAttack",
    "ChronosAttackResult",
    "max_honest_lookups_tolerated",
    "addresses_needed_to_dominate",
    "probability_scenario1",
    "probability_scenario2",
    "required_removals",
    "table3_rows",
    "monte_carlo_scenario1",
    "monte_carlo_scenario2",
]
