"""Tests for NTP server rate limiting (the mechanism the attack abuses)."""

from repro.ntp.rate_limit import RateLimitDecision, RateLimiter


class TestBasicBehaviour:
    def test_slow_client_never_limited(self):
        limiter = RateLimiter(average_interval=8.0, burst_tolerance=30.0)
        decisions = [limiter.check("10.0.0.1", now=float(t * 64)) for t in range(20)]
        assert all(d is RateLimitDecision.RESPOND for d in decisions)

    def test_fast_client_limited_with_kod_first(self):
        limiter = RateLimiter(send_kod=True)
        decisions = [limiter.check("10.0.0.1", now=float(t)) for t in range(20)]
        assert RateLimitDecision.KOD in decisions
        assert decisions[-1] is RateLimitDecision.DROP
        assert decisions.count(RateLimitDecision.KOD) == 1

    def test_fast_client_limited_without_kod(self):
        limiter = RateLimiter(send_kod=False)
        decisions = [limiter.check("10.0.0.1", now=float(t)) for t in range(20)]
        assert RateLimitDecision.KOD not in decisions
        assert RateLimitDecision.DROP in decisions

    def test_disabled_limiter_always_responds(self):
        limiter = RateLimiter(enabled=False)
        decisions = [limiter.check("10.0.0.1", now=float(t) * 0.01) for t in range(100)]
        assert all(d is RateLimitDecision.RESPOND for d in decisions)

    def test_limits_are_per_source(self):
        limiter = RateLimiter()
        for t in range(20):
            limiter.check("10.0.0.1", now=float(t))
        assert limiter.check("10.0.0.2", now=20.0) is RateLimitDecision.RESPOND

    def test_budget_recovers_after_idle_period(self):
        limiter = RateLimiter()
        for t in range(20):
            limiter.check("10.0.0.1", now=float(t))
        assert limiter.is_limited("10.0.0.1", now=20.0)
        assert limiter.check("10.0.0.1", now=500.0) is RateLimitDecision.RESPOND


class TestSpoofingAbuse:
    def test_spoofed_queries_deny_service_to_victim(self):
        """The run-time attack's core: the attacker's spoofed queries (same
        source address) exhaust the victim's budget, so the victim's own
        slow polls go unanswered."""
        limiter = RateLimiter()
        victim = "192.0.2.100"
        now = 0.0
        # Attacker sends a spoofed query every 2 seconds for a minute.
        for _ in range(30):
            limiter.check(victim, now)
            now += 2.0
        # The victim's own poll (one per 64 s) is now denied.
        assert limiter.check(victim, now + 10.0) is not RateLimitDecision.RESPOND

    def test_sustained_spoofing_keeps_victim_limited(self):
        limiter = RateLimiter()
        victim = "192.0.2.100"
        now = 0.0
        denied_polls = 0
        for round_index in range(10):
            for _ in range(32):
                limiter.check(victim, now)
                now += 2.0
            if limiter.check(victim, now) is not RateLimitDecision.RESPOND:
                denied_polls += 1
        assert denied_polls == 10

    def test_reset_clears_state(self):
        limiter = RateLimiter()
        for t in range(20):
            limiter.check("10.0.0.1", now=float(t))
        limiter.reset("10.0.0.1")
        assert limiter.check("10.0.0.1", now=20.0) is RateLimitDecision.RESPOND

    def test_counters(self):
        limiter = RateLimiter()
        for t in range(20):
            limiter.check("10.0.0.1", now=float(t))
        assert limiter.queries_seen == 20
        assert limiter.queries_dropped > 0
        assert limiter.kods_sent == 1
