"""Success-probability analysis of the run-time attack (paper section V-B, Table III).

The run-time attack works only against associations whose server actually
enforces rate limiting.  With ``p_rate`` the probability that a random pool
server rate-limits (the paper's scan measured 38 %), the paper derives:

* **Scenario 1** (servers discovered one-by-one, no choice): all ``n``
  servers that must be removed have to rate-limit, so
  ``P1(n) = p_rate ** n``.
* **Scenario 2** (server list known up front, attacker picks which to
  remove): at least ``n`` of the ``m`` used servers must rate-limit, so
  ``P2(m, n) = sum_{i=n}^{m} C(m, i) p^i (1-p)^(m-i)``.

Table III evaluates both for ``m = 1..9`` with
``n = max(ceil(m/2), m-2)`` — the number of servers that must be removed so
the client both loses its majority of honest time sources and (for ntpd-like
clients) drops below the threshold that triggers a new DNS lookup.

The Monte-Carlo estimators cross-check the closed forms and are reused by
the measurement benchmarks to validate the synthetic pool population.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Rate-limiting prevalence measured by the paper's pool scan (section VII-A).
PAPER_P_RATE = 0.38

# NOTE on the paper's formula rendering: the text of P2 shows
# ``p^i * p^(m-i)`` but the accompanying description ("probability that
# exactly i out of m servers do rate limiting") and the tabulated values
# correspond to the standard binomial tail with ``(1-p)^(m-i)``; we implement
# the binomial tail, which reproduces Table III.


def probability_scenario1(n: int, p_rate: float = PAPER_P_RATE) -> float:
    """P1(n): probability that ``n`` specific servers all rate-limit."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return p_rate ** n


def probability_scenario2(m: int, n: int, p_rate: float = PAPER_P_RATE) -> float:
    """P2(m, n): probability that at least ``n`` of ``m`` servers rate-limit."""
    if not 0 <= n <= m:
        raise ValueError(f"need 0 <= n <= m, got n={n}, m={m}")
    total = 0.0
    for i in range(n, m + 1):
        total += math.comb(m, i) * (p_rate ** i) * ((1 - p_rate) ** (m - i))
    return total


def required_removals(m: int) -> int:
    """The ``n`` used by Table III for a client with ``m`` associations.

    The attacker must remove a strict majority of the servers
    (``floor(m/2) + 1``, so that the shifted time wins the client's
    selection) and, for the ntpd association-management behaviour, enough
    servers to fall below the re-query threshold (``m - 2``); Table III uses
    the larger of the two.  (The paper's table header writes the majority
    term as ``ceil(m/2)``, but the tabulated n values — e.g. n=3 for m=4 and
    n=2 for m=2 — correspond to the strict majority, which is what we
    implement.)
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    return max(m // 2 + 1, m - 2)


@dataclass
class Table3Row:
    """One row of Table III."""

    m: int
    n: int
    p1: float
    p2: float


def table3_rows(
    m_values: range | list[int] = range(1, 10), p_rate: float = PAPER_P_RATE
) -> list[Table3Row]:
    """Compute all rows of Table III for the given ``m`` values."""
    rows = []
    for m in m_values:
        n = required_removals(m)
        rows.append(
            Table3Row(
                m=m,
                n=n,
                p1=probability_scenario1(n, p_rate),
                p2=probability_scenario2(m, n, p_rate),
            )
        )
    return rows


def _rate_limit_draws(
    trials: int, m: int, p_rate: float, rng: np.random.Generator | None
) -> np.ndarray:
    """One ``(trials, m)`` boolean matrix: does server ``j`` rate-limit in trial ``i``?"""
    rng = rng or np.random.default_rng(0)
    return rng.random((trials, m)) < p_rate


def monte_carlo_scenario1(
    n: int,
    p_rate: float = PAPER_P_RATE,
    trials: int = 100_000,
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of P1(n) (cross-check for the closed form)."""
    if n == 0:
        return 1.0
    draws = _rate_limit_draws(trials, n, p_rate, rng)
    return float(np.mean(np.all(draws, axis=1)))


def monte_carlo_scenario2(
    m: int,
    n: int,
    p_rate: float = PAPER_P_RATE,
    trials: int = 100_000,
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of P2(m, n)."""
    draws = _rate_limit_draws(trials, m, p_rate, rng)
    return float(np.mean(np.sum(draws, axis=1) >= n))


def monte_carlo_table3(
    m_values: range | list[int] = range(1, 10),
    p_rate: float = PAPER_P_RATE,
    trials: int = 100_000,
    rng: np.random.Generator | None = None,
) -> dict[int, tuple[float, float]]:
    """Monte-Carlo estimates ``{m: (P1(n), P2(m, n))}`` for all Table III rows.

    Draws a *single* ``(trials, max_m)`` matrix and reuses its column
    prefixes for every row — one RNG pass instead of one per (row, column)
    cell (the pre-vectorised benchmark drew nine m-sized matrices twice
    over).  With a cumulative sum across servers, row ``m`` reads:

    * ``P1(n)``: the first ``n`` servers all rate-limit, i.e. the running
      count after column ``n`` equals ``n``;
    * ``P2(m, n)``: at least ``n`` of the first ``m`` servers rate-limit.
    """
    m_list = list(m_values)
    if not m_list:
        return {}
    pairs = [(m, required_removals(m)) for m in m_list]
    width = max(max(m for m, _ in pairs), max(n for _, n in pairs))
    draws = _rate_limit_draws(trials, width, p_rate, rng)
    counts = np.cumsum(draws, axis=1)
    estimates: dict[int, tuple[float, float]] = {}
    for m, n in pairs:
        p1 = 1.0 if n == 0 else float(np.mean(counts[:, n - 1] == n))
        p2 = float(np.mean(counts[:, m - 1] >= n))
        estimates[m] = (p1, p2)
    return estimates


def expected_attempts_until_success(probability: float) -> float:
    """Expected number of independent attempts before the attack succeeds."""
    if probability <= 0:
        return math.inf
    return 1.0 / probability
