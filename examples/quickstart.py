#!/usr/bin/env python3
"""Quickstart: honest NTP synchronisation, then a boot-time DNS attack.

The script builds the standard lab testbed (a synthetic ``pool.ntp.org``
population, its authoritative nameserver, a victim recursive resolver and an
off-path attacker), lets an SNTP client synchronise honestly, and then runs
the paper's boot-time attack (section IV-A) against a second, freshly booting
client: the attacker poisons the resolver's cache by planting a spoofed
second IP fragment, the client's very first DNS lookup returns attacker
addresses, and its clock is stepped 500 seconds into the past.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.boot_time import BootTimeAttack
from repro.ntp.clients import SystemdTimesyncdClient
from repro.testbed import NAMESERVER_IP, TestbedConfig, build_testbed


def main() -> None:
    testbed = build_testbed(
        TestbedConfig(pool_size=32, seed=1, pool_rotation="fixed", attacker_time_shift=-500.0)
    )
    print("== Honest synchronisation ==")
    honest = testbed.add_client(SystemdTimesyncdClient, initial_clock_offset=42.0)
    honest.start()
    testbed.run_for(400)
    print(f"client booted 42 s off, clock error after 400 s: {honest.clock_error():+.3f} s")
    print(f"servers used: {honest.usable_server_ips()}")

    print("\n== Boot-time attack (section IV-A) ==")
    attack = BootTimeAttack(
        attacker=testbed.attacker,
        simulator=testbed.simulator,
        resolver=testbed.resolver,
        nameserver_ip=NAMESERVER_IP,
        target_mtu=68,
    )
    attack.launch_poisoning()
    testbed.run_for(10)  # let the attacker plant its spoofed fragment
    victim = testbed.add_client(SystemdTimesyncdClient)
    result = attack.evaluate(victim, observation_period=400)

    print(f"resolver cache poisoned:      {result.poisoned}")
    print(f"victim uses attacker servers: {result.client_used_attacker_server}")
    print(f"victim clock shift:           {result.clock_shift_achieved:+.1f} s "
          f"(target {result.target_shift:+.1f} s)")
    print(f"attack succeeded:             {result.success}")
    print(f"spoofed fragments sent:       {testbed.attacker.stats.spoofed_fragments_sent}")
    print(f"time from boot to shift:      {result.time_to_shift:.0f} s")


if __name__ == "__main__":
    main()
