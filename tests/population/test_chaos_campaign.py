"""Chaos campaigns end-to-end through the durable run store."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import RunStore
from repro.measurement.report import degradation_report
from repro.population.chaos import (
    CampaignHorizon,
    ChaosPhase,
    ChaosPlan,
    CorrelationGroup,
    campaign_specs,
    load_campaign,
    resume_chaos_campaign,
    run_chaos_campaign,
)
from repro.population.spec import FaultRegimeSpec, PopulationSpec


def tiny_spec() -> PopulationSpec:
    return PopulationSpec(
        size=2,
        client_mix={"ntpd": 1.0},
        pool_size=8,
        warmup_seconds=60.0,
        max_duration_hours=0.05,
    )


def tiny_plan() -> ChaosPlan:
    return ChaosPlan(
        groups=(CorrelationGroup("east", 0.5), CorrelationGroup("west", 0.5)),
        regimes=(FaultRegimeSpec("blackout", kind="partition"),),
        phases=(
            ChaosPhase("calm", 100.0),
            ChaosPhase("storm", 100.0, regimes=(("east", "blackout"),)),
        ),
        horizon=CampaignHorizon(duration=250.0),
    )


@pytest.fixture(scope="module")
def campaign_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("campaign")
    store = RunStore(str(root))
    campaign = run_chaos_campaign(
        store,
        "tiny",
        tiny_spec(),
        tiny_plan(),
        seed=3,
        runner=ExperimentRunner(max_workers=1),
    )
    return store, campaign


class TestRunCampaign:
    def test_sweep_completes_with_checkpoint_outcomes(self, campaign_store):
        store, campaign = campaign_store
        sweep_id = campaign["sweep_id"]
        assert store.manifest(sweep_id)["status"] == "complete"
        assert store.manifest(sweep_id)["metadata"]["kind"] == "chaos-campaign"
        done = store.load_outcomes(sweep_id)
        assert sorted(done) == [0, 1, 2]  # checkpoints 100, 200, 250
        assert store.fsck().ok

    def test_summary_record_and_checkpoint_aggregates_stored(
        self, campaign_store
    ):
        store, campaign = campaign_store
        sweep_id = campaign["sweep_id"]
        summaries = store.kind_records(sweep_id, "chaos-campaign-summary")
        assert len(summaries) == 1
        assert summaries[0]["plan_digest"] == tiny_plan().digest()
        aggregates = store.kind_records(sweep_id, "chaos-checkpoint")
        assert len(aggregates) == 3
        assert [a["cell"]["until"] for a in aggregates] == [100.0, 200.0, 250.0]
        # Aggregates are stripped from the stored summary (constant size)
        # but present in the returned document.
        assert all("aggregate" not in c for c in summaries[0]["checkpoints"])
        assert all("aggregate" in c for c in campaign["checkpoints"])

    def test_checkpoints_carry_phases_and_groups(self, campaign_store):
        _store, campaign = campaign_store
        checkpoints = campaign["checkpoints"]
        assert [c["until"] for c in checkpoints] == [100.0, 200.0, 250.0]
        assert [c["phase"] for c in checkpoints] == ["calm", "storm", ""]
        for checkpoint in checkpoints:
            assert set(checkpoint["groups"]) <= {"east", "west"}
        # The storm actually fired on the east group's links.
        storm = checkpoints[1]
        east = storm["groups"].get("east")
        assert east is None or east["fault_stats"]["dropped_partition"] >= 0
        assert storm["fault_stats"]["dropped_partition"] > 0

    def test_load_campaign_round_trips_the_summary(self, campaign_store):
        store, campaign = campaign_store
        loaded = load_campaign(store, campaign["sweep_id"])
        assert loaded is not None
        assert loaded["plan_digest"] == campaign["plan_digest"]
        assert [c["until"] for c in loaded["checkpoints"]] == [
            c["until"] for c in campaign["checkpoints"]
        ]

    def test_degradation_report_renders_timeline(self, campaign_store):
        _store, campaign = campaign_store
        text = degradation_report(campaign)
        assert "chaos campaign tiny" in text
        assert "calm" in text and "storm" in text
        assert "east ok" in text and "west ok" in text
        assert len(text.splitlines()) == 6  # title + header + rule + 3 rows


class TestResume:
    def test_resume_from_bare_manifest_matches_uninterrupted(
        self, tmp_path, campaign_store
    ):
        _store, campaign = campaign_store
        # A campaign killed before any checkpoint finished: the manifest
        # froze the specs, no outcome records exist.
        store = RunStore(str(tmp_path / "killed"))
        specs = campaign_specs(tiny_spec(), tiny_plan(), seed=3)
        writer = store.begin_sweep(
            "tiny", specs, sweep_id="killed", seed=3,
            metadata={"kind": "chaos-campaign"},
        )
        writer.close()
        assert store.manifest("killed")["status"] == "running"

        resumed = resume_chaos_campaign(
            store, "killed", runner=ExperimentRunner(max_workers=1)
        )
        assert store.manifest("killed")["status"] == "complete"
        # Bit-identical to the uninterrupted campaign, checkpoint by
        # checkpoint (aggregates included).
        assert [c for c in resumed["checkpoints"]] == [
            c for c in campaign["checkpoints"]
        ]
        assert resumed["plan_digest"] == campaign["plan_digest"]
        assert resumed["spec_digest"] == campaign["spec_digest"]

    def test_resume_of_complete_campaign_is_idempotent(self, campaign_store):
        store, campaign = campaign_store
        resumed = resume_chaos_campaign(
            store, campaign["sweep_id"], runner=ExperimentRunner(max_workers=1)
        )
        assert resumed["checkpoints"] == campaign["checkpoints"]
        assert store.manifest(campaign["sweep_id"])["status"] == "complete"
        assert store.fsck().ok
