"""Declarative scenario grids executed serially or across processes.

A sweep is declared as a list of :class:`RunSpec` (scenario name plus keyword
parameters) and handed to :class:`ExperimentRunner`.  Each run builds its own
simulator from its own seed, so runs are independent and can execute in any
order on any worker while remaining bit-for-bit reproducible; the runner
returns outcomes in declaration order regardless of completion order.

Only the spec (a string and a tuple of primitives) crosses the process
boundary — workers resolve the scenario function from the registry in
:mod:`repro.experiments.scenarios` by name.  This keeps the engine robust to
the usual pickling pitfalls (lambdas, locally defined classes, bound
methods).
"""

from __future__ import annotations

import json
import os
import platform
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.measurement.report import format_table
from repro.perf import (
    DISPATCH_STAGES,
    PIPELINE_STAGES,
    STAGE_STATS_ENV,
    STAGES,
    stage_shares,
)

#: Default file the benchmark harness persists timings to (repo root).
BENCH_JSON_FILENAME = "BENCH_netsim.json"


@dataclass(frozen=True)
class RunSpec:
    """One cell of a scenario grid: a registered scenario plus parameters.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so the
    spec is hashable and its repr is stable — useful as a table row key and
    for deduplication.
    """

    scenario: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, scenario: str, **params: Any) -> "RunSpec":
        """Build a spec from keyword parameters."""
        return cls(scenario=scenario, params=tuple(sorted(params.items())))

    def kwargs(self) -> dict[str, Any]:
        """The parameters as a keyword dict (what the scenario receives)."""
        return dict(self.params)

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``table2[client=ntpd, seed=5]``."""
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.scenario}[{inner}]" if inner else self.scenario


@dataclass
class RunOutcome:
    """The result of executing one :class:`RunSpec`."""

    spec: RunSpec
    result: Any = None
    wall_time: float = 0.0
    error: Optional[str] = None
    #: Per-stage decode/encode wall-time snapshot (see :mod:`repro.perf`);
    #: populated only when stage-stats collection is enabled.
    stage_stats: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """True when the run completed without raising."""
        return self.error is None


def make_grid(scenario: str, **axes: Iterable[Any]) -> list[RunSpec]:
    """Cross-product a set of named axes into a list of specs.

    ``make_grid("table2", client=["ntpd", "chrony"], seed=[1, 2])`` yields
    four specs in deterministic (row-major, insertion-ordered) order.
    """
    names = list(axes)
    combos = product(*(list(axes[name]) for name in names))
    return [
        RunSpec.make(scenario, **dict(zip(names, combo))) for combo in combos
    ]


def _execute_chunk(specs: tuple[RunSpec, ...]) -> list[RunOutcome]:
    """Run a contiguous slice of the grid in one worker task.

    Chunked submission amortises the per-task overhead of the process pool
    (pickling, dispatch) and — together with the
    :func:`repro.experiments.warmup.warm_worker_caches` pool initializer —
    means a worker pays the import/intern/memo warm-up once, not once per
    scenario.  Top-level, hence picklable.
    """
    from repro.experiments.warmup import warm_worker_caches

    warm_worker_caches()
    return [_execute(spec) for spec in specs]


def _execute(spec: RunSpec) -> RunOutcome:
    """Run one spec (in the current process).  Top-level, hence picklable.

    Stage-stats collection is keyed off the ``REPRO_STAGE_STATS`` environment
    variable (not a parameter) so the same picklable function works in
    worker processes — the runner sets the variable before creating the
    pool and workers inherit it.
    """
    from repro.experiments.scenarios import get_scenario

    collect_stages = bool(os.environ.get(STAGE_STATS_ENV))
    if collect_stages:
        STAGES.reset()
        STAGES.enable()
    started = time.perf_counter()
    try:
        result = get_scenario(spec.scenario)(**spec.kwargs())
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return RunOutcome(
            spec=spec,
            wall_time=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
        )
    finally:
        if collect_stages:
            STAGES.disable()
    wall_time = time.perf_counter() - started
    return RunOutcome(
        spec=spec,
        result=result,
        wall_time=wall_time,
        stage_stats=STAGES.snapshot(wall_time) if collect_stages else None,
    )


class ExperimentRunner:
    """Execute scenario sweeps, optionally fanning out across processes.

    Parameters
    ----------
    max_workers:
        ``1`` forces in-process serial execution (no pickling requirements
        at all).  ``None`` uses ``os.cpu_count()``.  Anything larger than 1
        uses a ``ProcessPoolExecutor``; if the pool cannot be created or a
        submission fails to pickle, the runner falls back to serial
        execution rather than failing the sweep.
    collect_stage_stats:
        When true, each run collects the per-stage decode/encode and
        delivery-pipeline wall-time counters of :mod:`repro.perf` and
        attaches a snapshot to its :class:`RunOutcome` (``stage_stats``),
        at the cost of a few ``perf_counter`` calls per codec operation and
        delivered packet.  Timing never feeds the simulation, so results
        remain bit-identical.
    chunk_size:
        Scenarios per worker task when fanning out across processes.
        ``None`` (the default) picks ``ceil(len(specs) / (4 * workers))``
        — large enough to amortise dispatch, small enough to load-balance
        a heterogeneous grid.  ``1`` reproduces the old task-per-scenario
        submission.  Each chunk runs against that worker's warmed caches
        (see :mod:`repro.experiments.warmup`).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        collect_stage_stats: bool = False,
        chunk_size: Optional[int] = None,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.max_workers = max_workers
        self.collect_stage_stats = collect_stage_stats
        self.chunk_size = chunk_size
        #: "serial" or "processes[N] chunks[M]" — how the last sweep ran.
        self.last_execution_mode: str = "serial"

    # ------------------------------------------------------------- execution
    def run(self, specs: Sequence[RunSpec]) -> list[RunOutcome]:
        """Execute all specs, returning outcomes in declaration order."""
        specs = list(specs)
        previous_env = os.environ.get(STAGE_STATS_ENV)
        if self.collect_stage_stats:
            # Workers inherit the environment, so this propagates through
            # the process pool as well as the serial path.
            os.environ[STAGE_STATS_ENV] = "1"
        try:
            if self.max_workers == 1 or len(specs) <= 1:
                self.last_execution_mode = "serial"
                return [_execute(spec) for spec in specs]
            chunks = self._chunk(specs)
            try:
                from repro.experiments.warmup import warm_worker_caches

                with ProcessPoolExecutor(
                    max_workers=self.max_workers, initializer=warm_worker_caches
                ) as pool:
                    # Chunks are contiguous slices, so flattening the chunk
                    # results preserves declaration order.
                    outcomes = [
                        outcome
                        for chunk_outcomes in pool.map(_execute_chunk, chunks)
                        for outcome in chunk_outcomes
                    ]
                self.last_execution_mode = (
                    f"processes[{self.max_workers}] chunks[{len(chunks)}]"
                )
                return outcomes
            except Exception:  # pool creation/pickling failure: degrade gracefully
                self.last_execution_mode = "serial (process pool unavailable)"
                return [_execute(spec) for spec in specs]
        finally:
            if self.collect_stage_stats:
                if previous_env is None:
                    os.environ.pop(STAGE_STATS_ENV, None)
                else:
                    os.environ[STAGE_STATS_ENV] = previous_env

    def _chunk(self, specs: list[RunSpec]) -> list[tuple[RunSpec, ...]]:
        """Slice the grid into contiguous worker tasks (see ``chunk_size``)."""
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(specs) // (4 * self.max_workers)))
        return [
            tuple(specs[start : start + size]) for start in range(0, len(specs), size)
        ]

    def run_grid(self, scenario: str, **axes: Iterable[Any]) -> list[RunOutcome]:
        """Declare and execute a cross-product grid in one call."""
        return self.run(make_grid(scenario, **axes))


# ------------------------------------------------------------------ reporting
def outcomes_table(
    outcomes: Sequence[RunOutcome],
    columns: Sequence[tuple[str, Callable[[RunOutcome], Any]]],
    title: str = "",
) -> str:
    """Render outcomes with :func:`repro.measurement.report.format_table`.

    ``columns`` is a list of ``(header, extractor)`` pairs; extractors
    receive the :class:`RunOutcome`.
    """
    headers = [header for header, _ in columns]
    rows = [[extract(outcome) for _, extract in columns] for outcome in outcomes]
    return format_table(headers, rows, title=title)


def timings_summary(outcomes: Sequence[RunOutcome]) -> dict[str, Any]:
    """Machine-readable wall-clock summary of a sweep (for the bench JSON).

    When the sweep ran with stage-stats collection, the summary also carries
    ``stage_time_shares``: the sweep-wide decode/encode seconds, the named
    delivery-pipeline stages (``defrag``, ``checksum``, ``demux``,
    ``handler``) and their shares of total wall time, with the remainder
    attributed to ``dispatch_other`` (event-loop dispatch, transmit,
    scheduling, scenario logic).  This is the field future PRs read to find
    the next bottleneck.
    """
    summary: dict[str, Any] = {
        "runs": [
            {
                "label": outcome.spec.label,
                "wall_time_seconds": round(outcome.wall_time, 6),
                "ok": outcome.ok,
            }
            for outcome in outcomes
        ],
        "total_wall_time_seconds": round(
            sum(outcome.wall_time for outcome in outcomes), 6
        ),
    }
    staged = [outcome for outcome in outcomes if outcome.stage_stats]
    if staged:
        total_wall = sum(outcome.wall_time for outcome in staged)
        decode = sum(outcome.stage_stats["decode_seconds"] for outcome in staged)
        encode = sum(outcome.stage_stats["encode_seconds"] for outcome in staged)
        stages: dict[str, dict[str, Any]] = {}
        for outcome in staged:
            for name, stats in outcome.stage_stats["stages"].items():
                merged = stages.setdefault(name, {"seconds": 0.0, "calls": 0})
                merged["seconds"] = round(merged["seconds"] + stats["seconds"], 6)
                merged["calls"] += stats["calls"]
        pipeline = {
            name: stages[name]["seconds"]
            for name in PIPELINE_STAGES + DISPATCH_STAGES
            if name in stages
        }
        summary["stage_time_shares"] = {
            "stages": stages,
            **stage_shares(decode, encode, total_wall, pipeline),
        }
    return summary


def write_bench_json(
    path: str,
    microbenchmarks: Optional[dict[str, Any]] = None,
    experiments: Optional[dict[str, Any]] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Write (or update) the machine-readable benchmark timings file.

    The file keeps one top-level document; sections passed as ``None`` are
    preserved from the existing file so microbenchmarks and end-to-end
    sweeps can be refreshed independently.
    """
    document: dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            document = {}
    document["schema"] = "repro-bench/1"
    document["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    document["python"] = platform.python_version()
    document["cpu_count"] = os.cpu_count()
    if microbenchmarks is not None:
        document["microbenchmarks"] = microbenchmarks
    if experiments is not None:
        document["experiments"] = experiments
    if extra:
        document.update(extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return document
