#!/usr/bin/env python3
"""Run-time attack against a running ntpd client (section IV-B / Table II).

A default-configured ntpd model synchronises against the pool, then the
off-path attacker:

1. poisons the resolver's cache for the pool domains (the poisoning primitive
   is demonstrated separately; here the paper's own lab shortcut of a
   directly poisoned resolver is used),
2. removes the victim's existing associations by keeping its servers
   rate-limiting it with spoofed mode 3 queries, and
3. waits for the client to go back to DNS, adopt the attacker's NTP servers
   and step its clock by -500 s.

Both knowledge scenarios are run: P1 (server list known up front) and
P2 (servers discovered one at a time through the victim's refid leak).

Run with::

    python examples/runtime_attack_ntpd.py
"""

from __future__ import annotations

from repro.core.run_time import RunTimeAttack, RunTimeScenario
from repro.measurement.report import format_table
from repro.ntp.clients import NtpdClient
from repro.testbed import TestbedConfig, build_testbed


def run_scenario(scenario: RunTimeScenario, seed: int) -> dict:
    testbed = build_testbed(TestbedConfig(pool_size=48, seed=seed))
    victim = testbed.add_client(NtpdClient)
    victim.start()
    testbed.run_for(1200)  # steady state

    attack = RunTimeAttack(
        attacker=testbed.attacker,
        simulator=testbed.simulator,
        resolver=testbed.resolver,
        victim=victim,
        scenario=scenario,
        known_server_list=testbed.pool.addresses,
        max_duration=3600.0 * 2.5,
    )
    result = attack.run()
    return {
        "scenario": scenario.value,
        "success": result.success,
        "duration_min": None
        if result.attack_duration_minutes is None
        else round(result.attack_duration_minutes, 1),
        "clock_shift_s": round(result.clock_shift_achieved, 1),
        "associations_removed": result.associations_removed,
        "spoofed_queries": result.spoofed_queries_sent,
    }


def main() -> None:
    rows = []
    for scenario, seed in ((RunTimeScenario.P1_KNOWN_SERVERS, 5), (RunTimeScenario.P2_REFID_DISCOVERY, 5)):
        outcome = run_scenario(scenario, seed)
        rows.append(
            [
                "ntpd",
                outcome["scenario"],
                outcome["success"],
                outcome["duration_min"],
                outcome["clock_shift_s"],
                outcome["associations_removed"],
                outcome["spoofed_queries"],
            ]
        )
    print(
        format_table(
            ["Client", "Scenario", "Success", "Duration (min)", "Shift (s)", "Removed", "Spoofed queries"],
            rows,
            title="Run-time attack against ntpd (compare paper Table II: P1 17 min, P2 47 min)",
        )
    )


if __name__ == "__main__":
    main()
