"""Tests for the stub resolver used by NTP clients."""

import numpy as np

from repro.dns.message import ResponseCode
from repro.dns.nameserver import PoolNameserver
from repro.dns.resolver import RecursiveResolver
from repro.dns.stub import StubResolver
from repro.netsim.addresses import address_range
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator


def build_env():
    sim = Simulator(seed=6)
    net = Network(sim)
    ns_host = net.add_host("ns", "198.51.100.10")
    PoolNameserver(ns_host, address_range("203.0.113.1", 20), rng=np.random.default_rng(0))
    resolver_host = net.add_host("resolver", "192.0.2.53")
    RecursiveResolver(resolver_host, sim, {"pool.ntp.org": "198.51.100.10"})
    client_host = net.add_host("client", "192.0.2.10")
    stub = StubResolver(client_host, sim, "192.0.2.53", timeout=3.0)
    return sim, net, stub


class TestStubResolver:
    def test_successful_resolution(self):
        sim, net, stub = build_env()
        results = []
        stub.resolve("pool.ntp.org", results.append)
        sim.run()
        assert results[0].ok
        assert len(results[0].addresses) == 4
        assert results[0].latency > 0
        assert stub.responses_received == 1

    def test_timeout_when_resolver_missing(self):
        sim, net, stub = build_env()
        results = []
        stub.resolve("pool.ntp.org", results.append, resolver_ip="192.0.2.99")
        sim.run()
        assert results[0].timed_out
        assert not results[0].ok
        assert stub.timeouts == 1

    def test_ttls_exposed(self):
        sim, net, stub = build_env()
        results = []
        stub.resolve("pool.ntp.org", results.append)
        sim.run()
        assert results[0].ttls() == [150, 150, 150, 150]

    def test_servfail_reported(self):
        sim, net, stub = build_env()
        results = []
        stub.resolve("unknown.test", results.append)
        sim.run()
        assert results[0].rcode is ResponseCode.SERVFAIL
        assert not results[0].ok

    def test_multiple_outstanding_queries(self):
        sim, net, stub = build_env()
        results = []
        stub.resolve("pool.ntp.org", results.append)
        stub.resolve("0.pool.ntp.org", results.append)
        sim.run()
        assert len(results) == 2 and all(r.ok for r in results)

    def test_socket_released_after_resolution(self):
        sim, net, stub = build_env()
        before = len(stub.host.bound_ports())
        stub.resolve("pool.ntp.org", lambda r: None)
        sim.run()
        assert len(stub.host.bound_ports()) == before
