"""Model of OpenBSD's openntpd client.

openntpd resolves its pool servers *only at start-up*; when servers become
unreachable at run time it keeps retrying them and never issues a new DNS
lookup, so the run-time attack does not apply (paper section V-A2) — the
attacker can only disable synchronisation, not redirect it.  The optional
HTTPS ``constraint`` mechanism (checking the Date header of a TLS-protected
web server) can partially authenticate time at boot, but it is disabled by
default; the model exposes it as ``tls_constraint`` for the countermeasure
benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.host import Host
from repro.netsim.simulator import Simulator
from repro.ntp.clients.base import BaseNTPClient, NTPClientConfig


class OpenNTPDClient(BaseNTPClient):
    """The openntpd behavioural model."""

    client_name = "openntpd"
    pool_usage_share = 0.044
    supports_boot_time_attack = True
    supports_runtime_attack = False

    def __init__(
        self,
        host: Host,
        simulator: Simulator,
        resolver_ip: str,
        config: Optional[NTPClientConfig] = None,
        tls_constraint: bool = False,
        constraint_tolerance: float = 30.0,
        **kwargs,
    ) -> None:
        super().__init__(host, simulator, resolver_ip, config, **kwargs)
        #: When enabled, offsets that contradict the (authentic) HTTPS Date
        #: header by more than the tolerance are rejected.
        self.tls_constraint = tls_constraint
        self.constraint_tolerance = constraint_tolerance

    @classmethod
    def default_config(cls) -> NTPClientConfig:
        return NTPClientConfig(
            pool_domains=["pool.ntp.org"],
            desired_associations=4,
            min_associations=1,
            max_associations=8,
            poll_interval=90.0,
            unreachable_after=8,
            runtime_dns=False,
            remove_unreachable=False,
            sntp=False,
            step_threshold=0.128,
            step_delay=600.0,
            min_step_samples=4,
            act_as_server=False,
        )

    def _apply_step(self, offset: float, now: float) -> None:
        if self.tls_constraint and abs(offset) > self.constraint_tolerance:
            # The HTTPS constraint (coarse, second-granularity) contradicts
            # the proposed step, so openntpd refuses it.
            self.stats.panics += 1
            return
        super()._apply_step(offset, now)
