"""NTP timestamp format (RFC 5905 section 6).

NTP timestamps are 64-bit fixed-point numbers: 32 bits of seconds since
1900-01-01 and 32 bits of fraction.  The simulator's "true time" is treated
as Unix time, so conversion adds the 70-year era offset.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seconds between the NTP epoch (1900) and the Unix epoch (1970).
NTP_UNIX_EPOCH_DELTA = 2_208_988_800

_FRACTION = 1 << 32


@dataclass(frozen=True, order=True)
class NTPTimestamp:
    """A 64-bit NTP timestamp (seconds and fraction since 1900)."""

    seconds: int
    fraction: int

    def __post_init__(self) -> None:
        if not 0 <= self.seconds < (1 << 32):
            raise ValueError(f"NTP seconds out of range: {self.seconds}")
        if not 0 <= self.fraction < _FRACTION:
            raise ValueError(f"NTP fraction out of range: {self.fraction}")

    @classmethod
    def from_unix(cls, unix_time: float) -> "NTPTimestamp":
        """Convert a Unix timestamp (float seconds) to NTP format."""
        ntp_time = unix_time + NTP_UNIX_EPOCH_DELTA
        seconds = int(ntp_time)
        fraction = int(round((ntp_time - seconds) * _FRACTION)) % _FRACTION
        return cls(seconds=seconds & 0xFFFFFFFF, fraction=fraction)

    def to_unix(self) -> float:
        """Convert back to a Unix timestamp."""
        return self.seconds - NTP_UNIX_EPOCH_DELTA + self.fraction / _FRACTION

    def to_bytes(self) -> bytes:
        """Encode as 8 wire bytes."""
        return self.seconds.to_bytes(4, "big") + self.fraction.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "NTPTimestamp":
        """Decode 8 wire bytes."""
        if len(data) != 8:
            raise ValueError("NTP timestamp must be 8 bytes")
        return cls(
            seconds=int.from_bytes(data[:4], "big"),
            fraction=int.from_bytes(data[4:], "big"),
        )

    @classmethod
    def zero(cls) -> "NTPTimestamp":
        """The all-zero timestamp used for unset fields."""
        return cls(seconds=0, fraction=0)

    def is_zero(self) -> bool:
        """True for the unset timestamp."""
        return self.seconds == 0 and self.fraction == 0

    def __sub__(self, other: "NTPTimestamp") -> float:
        """Difference between two timestamps in seconds (as a float)."""
        return (
            (self.seconds - other.seconds)
            + (self.fraction - other.fraction) / _FRACTION
        )
