"""Exception hierarchy for the DNS substrate."""


class DNSError(Exception):
    """Base class for all DNS errors."""


class NameError_(DNSError):
    """A domain name was malformed (too long, bad label, ...)."""


class MessageError(DNSError):
    """A DNS message could not be encoded or decoded."""


class ResolutionError(DNSError):
    """A query could not be resolved (timeout, SERVFAIL, no nameserver)."""


class ValidationError(DNSError):
    """DNSSEC validation failed."""
