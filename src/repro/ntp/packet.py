"""NTP packet format (RFC 5905), including Kiss-o'-Death responses.

The reproduction uses client (mode 3) and server (mode 4) packets plus the
``RATE`` Kiss-o'-Death code that rate-limiting servers send just before they
stop answering a client.  The ``reference_id`` of a mode 4 packet from a
stratum-2+ server carries the IPv4 address of its current upstream server,
which is the information leak the run-time attack's scenario P2 uses to
discover a victim's associations one at a time (paper section IV-B2b).

Hot-path note: every poll, response and spoofed query in an experiment goes
through :meth:`NTPPacket.encode`/:meth:`NTPPacket.decode`, so both use one
precompiled :class:`struct.Struct` covering the whole 48-byte packet — the
four timestamps are (un)packed as eight 32-bit words in the same operation,
with no intermediate 8-byte slices — and the packet itself is a slotted
dataclass.  Decoding truncated or malformed bytes raises the typed
:class:`~repro.ntp.errors.NTPPacketError` (a ``ValueError`` subclass), never
a raw ``struct.error``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from functools import lru_cache

from repro.netsim.addresses import int_to_ip, ip_to_int
from repro.ntp.errors import NTPPacketError
from repro.ntp.timestamps import (
    NTP_UNIX_EPOCH_DELTA,
    NTPTimestamp,
    timestamp_from_wire,
)
from repro.perf import STAGES, perf_counter

#: Well-known NTP UDP port.
NTP_PORT = 123
#: Size of a plain (unauthenticated) NTP packet.
NTP_PACKET_LEN = 48

#: The whole 48-byte packet as one precompiled codec: header fields, the
#: 4-byte reference id, then the four timestamps as eight 32-bit words.
_NTP_WIRE = struct.Struct("!BBbbII4s8I")
#: The two 32-bit words of a transmit timestamp (see ``client_query_wire``).
_TRANSMIT_WORDS = struct.Struct("!II")
#: First 40 bytes of every default mode 3 query: leap 0 / version 4 / mode 3,
#: stratum 0, poll 6, precision -20, zero root delay/dispersion/refid and
#: zero reference, origin and receive timestamps.
_CLIENT_QUERY_PREFIX = struct.pack("!BBbbII4s6I", 0x23, 0, 6, -20, 0, 0, b"\x00" * 4, 0, 0, 0, 0, 0, 0)


class NTPMode(IntEnum):
    """NTP association modes used here."""

    SYMMETRIC_ACTIVE = 1
    SYMMETRIC_PASSIVE = 2
    CLIENT = 3
    SERVER = 4
    BROADCAST = 5
    CONTROL = 6
    PRIVATE = 7


#: Mode lookup table: a dict hit is markedly cheaper than the Enum call in
#: the per-packet decode path (misses fall back to the typed error below).
_MODE_BY_VALUE = {int(mode): mode for mode in NTPMode}


class KissCode:
    """Kiss-o'-Death reference identifiers (RFC 5905 section 7.4)."""

    RATE = "RATE"
    DENY = "DENY"
    RSTR = "RSTR"


@lru_cache(maxsize=4096)
def _decode_refid(stratum: int, refid_bytes: bytes) -> str:
    """Decode the 4-byte reference id (cached; the value space is tiny).

    Stratum 0/1 carry ASCII identifiers (kiss codes, reference clock names);
    higher strata carry the IPv4 address of the synchronisation source.
    """
    if stratum <= 1:
        return refid_bytes.rstrip(b"\x00").decode("ascii", errors="replace")
    if refid_bytes == b"\x00\x00\x00\x00":
        return ""
    return int_to_ip(int.from_bytes(refid_bytes, "big"))


@lru_cache(maxsize=4096)
def _encode_refid(stratum: int, reference_id: str) -> bytes:
    """Encode a reference id to its 4 wire bytes (cached, bounded)."""
    if not reference_id:
        return b"\x00" * 4
    if stratum <= 1:
        return reference_id.encode("ascii")[:4].ljust(4, b"\x00")
    return ip_to_int(reference_id).to_bytes(4, "big")


@dataclass(slots=True)
class NTPPacket:
    """A 48-byte NTP packet."""

    mode: NTPMode
    leap: int = 0
    version: int = 4
    stratum: int = 2
    poll: int = 6
    precision: int = -20
    root_delay: float = 0.0
    root_dispersion: float = 0.0
    reference_id: str = ""
    reference_timestamp: NTPTimestamp = field(default_factory=NTPTimestamp.zero)
    origin_timestamp: NTPTimestamp = field(default_factory=NTPTimestamp.zero)
    receive_timestamp: NTPTimestamp = field(default_factory=NTPTimestamp.zero)
    transmit_timestamp: NTPTimestamp = field(default_factory=NTPTimestamp.zero)

    # ------------------------------------------------------------ properties
    @property
    def is_kiss_of_death(self) -> bool:
        """True for stratum-0 server packets carrying a kiss code."""
        return self.mode is NTPMode.SERVER and self.stratum == 0

    @property
    def kiss_code(self) -> str:
        """The kiss code, for Kiss-o'-Death packets."""
        return self.reference_id if self.is_kiss_of_death else ""

    @property
    def refid_as_address(self) -> str:
        """Interpret the reference id as an IPv4 address (stratum >= 2).

        For stratum 2 and above the reference id identifies the server's
        current synchronisation source — the leak exploited by attack
        scenario P2.
        """
        if self.stratum >= 2 and len(self.reference_id) == 4 and not self.reference_id.isalpha():
            return self.reference_id
        return self.reference_id

    # -------------------------------------------------------------- encoding
    def _encode_refid(self) -> bytes:
        # Stratum 0 (kiss codes) and stratum 1 (reference clock names) carry
        # ASCII identifiers; higher strata carry the IPv4 address of the
        # server's synchronisation source.
        return _encode_refid(self.stratum, self.reference_id)

    def encode(self) -> bytes:
        """Encode the packet to its 48 wire bytes."""
        if STAGES.enabled:
            started = perf_counter()
            wire = self._encode()
            STAGES.add("ntp_encode", perf_counter() - started)
            return wire
        return self._encode()

    def _encode(self) -> bytes:
        reference = self.reference_timestamp
        origin = self.origin_timestamp
        receive = self.receive_timestamp
        transmit = self.transmit_timestamp
        return _NTP_WIRE.pack(
            ((self.leap & 0x3) << 6) | ((self.version & 0x7) << 3) | int(self.mode),
            self.stratum,
            self.poll,
            self.precision,
            int(self.root_delay * (1 << 16)) & 0xFFFFFFFF,
            int(self.root_dispersion * (1 << 16)) & 0xFFFFFFFF,
            _encode_refid(self.stratum, self.reference_id),
            reference.seconds,
            reference.fraction,
            origin.seconds,
            origin.fraction,
            receive.seconds,
            receive.fraction,
            transmit.seconds,
            transmit.fraction,
        )

    @classmethod
    def decode(cls, data: bytes) -> "NTPPacket":
        """Decode 48 wire bytes into a packet.

        Raises :class:`NTPPacketError` on truncated input or an invalid mode
        (never ``struct.error``).
        """
        if STAGES.enabled:
            started = perf_counter()
            packet = cls._decode(data)
            STAGES.add("ntp_decode", perf_counter() - started)
            return packet
        return cls._decode(data)

    @classmethod
    def _decode(cls, data: bytes) -> "NTPPacket":
        if len(data) < NTP_PACKET_LEN:
            raise NTPPacketError(f"NTP packet too short: {len(data)} bytes")
        (
            li_vn_mode,
            stratum,
            poll,
            precision,
            root_delay_raw,
            root_dispersion_raw,
            refid_bytes,
            ref_seconds,
            ref_fraction,
            orig_seconds,
            orig_fraction,
            recv_seconds,
            recv_fraction,
            xmit_seconds,
            xmit_fraction,
        ) = _NTP_WIRE.unpack_from(data)
        mode = _MODE_BY_VALUE.get(li_vn_mode & 0x7)
        if mode is None:
            raise NTPPacketError(f"{li_vn_mode & 0x7} is not a valid NTPMode")
        # Direct slot assignment: this constructor runs once per received
        # packet, and skipping the 13-keyword __init__ call is a measurable
        # share of decode cost.
        packet = cls.__new__(cls)
        packet.mode = mode
        packet.leap = (li_vn_mode >> 6) & 0x3
        packet.version = (li_vn_mode >> 3) & 0x7
        packet.stratum = stratum
        packet.poll = poll
        packet.precision = precision
        packet.root_delay = root_delay_raw / (1 << 16)
        packet.root_dispersion = root_dispersion_raw / (1 << 16)
        packet.reference_id = _decode_refid(stratum, refid_bytes)
        packet.reference_timestamp = timestamp_from_wire(ref_seconds, ref_fraction)
        packet.origin_timestamp = timestamp_from_wire(orig_seconds, orig_fraction)
        packet.receive_timestamp = timestamp_from_wire(recv_seconds, recv_fraction)
        packet.transmit_timestamp = timestamp_from_wire(xmit_seconds, xmit_fraction)
        return packet

    # ------------------------------------------------------------ factories
    @classmethod
    def client_query(cls, transmit_time: float) -> "NTPPacket":
        """Build a mode 3 query with the client's transmit timestamp."""
        return cls(
            mode=NTPMode.CLIENT,
            stratum=0,
            transmit_timestamp=NTPTimestamp.from_unix(transmit_time),
        )

    @classmethod
    def client_query_wire(cls, transmit_time: float) -> bytes:
        """The wire bytes of :meth:`client_query` without building the packet.

        Spoofing loops encode tens of thousands of mode 3 queries that are
        identical except for the transmit timestamp, so the first 40 bytes
        are a precomputed constant (pinned against ``client_query().encode()``
        by the fast-path property tests).
        """
        ntp_time = transmit_time + NTP_UNIX_EPOCH_DELTA
        seconds = int(ntp_time)
        fraction = int(round((ntp_time - seconds) * (1 << 32))) % (1 << 32)
        return _CLIENT_QUERY_PREFIX + _TRANSMIT_WORDS.pack(
            seconds & 0xFFFFFFFF, fraction
        )

    @classmethod
    def server_response(
        cls,
        query: "NTPPacket",
        server_time: float,
        stratum: int = 2,
        reference_id: str = "",
    ) -> "NTPPacket":
        """Build the mode 4 response to ``query`` at the server's clock time."""
        now = NTPTimestamp.from_unix(server_time)
        # Direct slot assignment: servers build one of these per answered
        # query (see the _decode note above).
        packet = cls.__new__(cls)
        packet.mode = NTPMode.SERVER
        packet.leap = 0
        packet.version = 4
        packet.stratum = stratum
        packet.poll = query.poll
        packet.precision = -20
        packet.root_delay = 0.0
        packet.root_dispersion = 0.0
        packet.reference_id = reference_id
        packet.reference_timestamp = now
        packet.origin_timestamp = query.transmit_timestamp
        packet.receive_timestamp = now
        packet.transmit_timestamp = now
        return packet

    @classmethod
    def kiss_of_death(cls, query: "NTPPacket", code: str = KissCode.RATE) -> "NTPPacket":
        """Build a Kiss-o'-Death response with the given code."""
        return cls(
            mode=NTPMode.SERVER,
            stratum=0,
            poll=max(query.poll, 10),
            reference_id=code,
            origin_timestamp=query.transmit_timestamp,
        )
