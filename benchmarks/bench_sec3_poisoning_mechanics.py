"""Section III / IV-A — mechanics and ablations of the poisoning primitive.

Regenerates the quantitative statements about the cache-poisoning building
blocks and runs the design-choice ablations called out in DESIGN.md:

* the end-to-end boot-time poisoning with the checksum fix in place,
* the same attack *without* checksum fixing (fails: the resolver's UDP layer
  rejects the reassembled datagram),
* the same attack against an unpredictable (randomly rotating) response tail
  (fails probabilistically for the same reason),
* the attack against a fragment-filtering resolver (fails: nothing to
  reassemble), and
* the low-volume property: at most ``ceil(150 / 30) = 5`` planted fragments
  per TTL window of the pool record.
"""

from __future__ import annotations

from repro.core.fragment_attack import DNSFragmentPoisoner, PoisoningPlan
from repro.dns.stub import StubResolver
from repro.measurement.report import format_table
from repro.testbed import NAMESERVER_IP, TestbedConfig, build_testbed


def run_attempt(
    seed: int,
    rotation: str = "fixed",
    drop_fragments: bool = False,
    disable_checksum_fix: bool = False,
    trigger_at: float = 10.0,
) -> dict:
    testbed = build_testbed(
        TestbedConfig(
            pool_size=24,
            seed=seed,
            pool_rotation=rotation,
            resolver_drops_fragments=drop_fragments,
        )
    )
    plan = PoisoningPlan(
        resolver_ip=testbed.resolver.ip,
        nameserver_ip=NAMESERVER_IP,
        malicious_addresses=testbed.attacker.redirect_addresses(4),
        target_mtu=68,
        max_duration=200.0,
    )
    poisoner = DNSFragmentPoisoner(
        testbed.attacker,
        testbed.simulator,
        plan,
        success_check=lambda: testbed.resolver_poisoned("pool.ntp.org"),
    )
    if disable_checksum_fix:
        # Ablation: skip the checksum-fixing step entirely.
        original_build = poisoner.build_spoofed_payload

        def without_fix():
            crafted = original_build()
            if crafted is None:
                return None
            payload, offset = crafted
            template_f2 = (b"\x00" * 8 + poisoner.template_payload)[
                poisoner.first_fragment_payload_length():
            ]
            desired, _ = poisoner._rewrite_records(poisoner.template_payload)
            raw_f2 = (b"\x00" * 8 + desired)[poisoner.first_fragment_payload_length():]
            return (raw_f2, offset) if raw_f2 != template_f2 else (payload, offset)

        poisoner.build_spoofed_payload = without_fix

    poisoner.start()
    testbed.run_for(trigger_at)
    bystander = testbed.network.add_host("bystander", "192.0.2.77")
    StubResolver(bystander, testbed.simulator, testbed.resolver.ip).resolve(
        "pool.ntp.org", lambda result: None
    )
    testbed.run_for(20)
    resolver_host = testbed.network.host(testbed.resolver.ip)
    return {
        "poisoned": testbed.resolver_poisoned("pool.ntp.org"),
        "fragments_sent": poisoner.fragments_sent,
        "refreshes": poisoner.refreshes,
        "checksum_failures": resolver_host.stats.udp_checksum_failures,
    }


def run_all() -> dict:
    return {
        "baseline (fixed tail, checksum fix)": run_attempt(seed=401),
        "no checksum fix": run_attempt(seed=402, disable_checksum_fix=True),
        "random response tail": run_attempt(seed=403, rotation="random"),
        "fragment-filtering resolver": run_attempt(seed=404, drop_fragments=True),
    }


def test_sec3_poisoning_mechanics_and_ablations(run_once):
    outcomes = run_once(run_all)
    print()
    print(
        format_table(
            ["Variant", "Poisoned", "Fragments sent", "UDP checksum failures"],
            [
                [name, o["poisoned"], o["fragments_sent"], o["checksum_failures"]]
                for name, o in outcomes.items()
            ],
            title="Section III — poisoning mechanics and ablations",
        )
    )
    assert outcomes["baseline (fixed tail, checksum fix)"]["poisoned"]
    assert not outcomes["no checksum fix"]["poisoned"]
    assert outcomes["no checksum fix"]["checksum_failures"] >= 1
    assert not outcomes["random response tail"]["poisoned"]
    assert not outcomes["fragment-filtering resolver"]["poisoned"]


def test_sec4a_low_attack_volume(run_once):
    """Section IV-A: at most 150/30 = 5 spoofed fragments per TTL window."""

    def run():
        testbed = build_testbed(TestbedConfig(pool_size=24, seed=405, pool_rotation="fixed"))
        plan = PoisoningPlan(
            resolver_ip=testbed.resolver.ip,
            nameserver_ip=NAMESERVER_IP,
            malicious_addresses=testbed.attacker.redirect_addresses(4),
            target_mtu=68,
            ipid_candidates=1,
            max_duration=150.0,
        )
        poisoner = DNSFragmentPoisoner(testbed.attacker, testbed.simulator, plan)
        poisoner.start()
        testbed.run_for(150.0)
        poisoner.stop()
        return poisoner

    poisoner = run_once(run)
    print(f"\nplant rounds in one 150 s TTL window: {poisoner.refreshes} "
          f"(paper bound: 150/30 = 5), fragments per round: 1")
    assert poisoner.refreshes <= 5
    assert poisoner.fragments_sent <= 5
