"""Tests for resource records and rdata encoding."""

import pytest

from repro.dns.errors import MessageError
from repro.dns.records import (
    ResourceRecord,
    RRType,
    a_record,
    cname_record,
    dnskey_record,
    ns_record,
    rrsig_record,
    soa_record,
    txt_record,
)


class TestFactories:
    def test_a_record(self):
        record = a_record("pool.ntp.org", "203.0.113.5", ttl=150)
        assert record.rtype is RRType.A
        assert record.data == "203.0.113.5"
        assert record.ttl == 150

    def test_ns_record(self):
        record = ns_record("pool.ntp.org", "ns1.pool.ntp.org")
        assert record.rtype is RRType.NS

    def test_name_normalised(self):
        assert a_record("Pool.NTP.org", "1.2.3.4").name == "pool.ntp.org"

    def test_negative_ttl_rejected(self):
        with pytest.raises(MessageError):
            a_record("x.example", "1.2.3.4", ttl=-5)

    def test_key_groups_by_name_and_type(self):
        a = a_record("pool.ntp.org", "1.1.1.1")
        b = a_record("pool.ntp.org", "2.2.2.2")
        assert a.key == b.key

    def test_with_ttl_copies(self):
        record = a_record("x.example", "1.2.3.4", ttl=300)
        lowered = record.with_ttl(10)
        assert lowered.ttl == 10 and record.ttl == 300
        assert lowered.data == record.data


class TestRdataEncoding:
    def round_trip(self, record: ResourceRecord):
        rdata = record.encode_rdata(None, 0)
        decoded = ResourceRecord.decode_rdata(record.rtype, rdata, rdata, 0)
        return rdata, decoded

    def test_a_rdata_is_four_bytes(self):
        rdata, decoded = self.round_trip(a_record("x.example", "203.0.113.9"))
        assert len(rdata) == 4
        assert decoded == "203.0.113.9"

    def test_ns_rdata_round_trip(self):
        _, decoded = self.round_trip(ns_record("x.example", "ns1.x.example"))
        assert decoded == "ns1.x.example"

    def test_cname_rdata_round_trip(self):
        _, decoded = self.round_trip(cname_record("a.example", "b.example"))
        assert decoded == "b.example"

    def test_txt_rdata_round_trip(self):
        _, decoded = self.round_trip(txt_record("x.example", "hello world"))
        assert decoded == "hello world"

    def test_soa_rdata_round_trip(self):
        record = soa_record("example", "ns1.example", serial=42)
        _, decoded = self.round_trip(record)
        assert decoded[0] == "ns1.example"
        assert decoded[2] == 42

    def test_rrsig_rdata_round_trip(self):
        record = rrsig_record("x.example", RRType.A, key_tag=7, signature_hex="ab" * 16)
        _, decoded = self.round_trip(record)
        assert decoded[0] is RRType.A
        assert decoded[1] == 7
        assert decoded[2] == "ab" * 16

    def test_dnskey_rdata_round_trip(self):
        _, decoded = self.round_trip(dnskey_record("example", key_tag=513))
        assert decoded == 513

    def test_bad_a_rdata_rejected(self):
        with pytest.raises(MessageError):
            ResourceRecord.decode_rdata(RRType.A, b"\x01\x02", b"", 0)

    def test_unknown_type_round_trips_as_bytes(self):
        record = ResourceRecord(name="x.example", rtype=RRType.AAAA, ttl=1, data="1.2.3.4")
        assert record.encode_rdata(None, 0) == b"\x01\x02\x03\x04"
