"""Tests for the report formatting helpers."""

from repro.measurement.report import format_percentage, format_table


class TestFormatPercentage:
    def test_basic(self):
        assert format_percentage(0.694) == "69.40%"

    def test_decimals(self):
        assert format_percentage(0.12345, decimals=1) == "12.3%"

    def test_zero_and_one(self):
        assert format_percentage(0.0) == "0.00%"
        assert format_percentage(1.0) == "100.00%"


class TestFormatTable:
    def test_contains_headers_rows_and_title(self):
        text = format_table(
            ["Client", "Duration"],
            [["ntpd", "17 min"], ["chrony", "57 min"]],
            title="Table II",
        )
        lines = text.splitlines()
        assert lines[0] == "Table II"
        assert "Client" in lines[1] and "Duration" in lines[1]
        assert any("ntpd" in line for line in lines)
        assert any("chrony" in line for line in lines)

    def test_columns_aligned(self):
        text = format_table(["a", "b"], [["xxxxx", "1"], ["y", "22"]])
        data_lines = text.splitlines()[2:]
        positions = {line.index(line.split()[-1]) for line in data_lines}
        assert len(positions) == 1

    def test_handles_non_string_cells(self):
        text = format_table(["n", "value"], [[1, 0.5], [2, None]])
        assert "None" in text and "0.5" in text
