"""Tests for the NTP packet format."""

import pytest

from repro.ntp.packet import KissCode, NTPMode, NTPPacket, NTP_PACKET_LEN


class TestEncodeDecode:
    def test_round_trip_client_query(self):
        packet = NTPPacket.client_query(transmit_time=1_650_000_000.25)
        decoded = NTPPacket.decode(packet.encode())
        assert decoded.mode is NTPMode.CLIENT
        assert decoded.transmit_timestamp == packet.transmit_timestamp

    def test_round_trip_server_response(self):
        query = NTPPacket.client_query(100.0)
        response = NTPPacket.server_response(
            query, server_time=105.5, stratum=2, reference_id="203.0.113.9"
        )
        decoded = NTPPacket.decode(response.encode())
        assert decoded.mode is NTPMode.SERVER
        assert decoded.stratum == 2
        assert decoded.reference_id == "203.0.113.9"
        assert decoded.origin_timestamp == query.transmit_timestamp

    def test_packet_is_48_bytes(self):
        assert len(NTPPacket.client_query(1.0).encode()) == NTP_PACKET_LEN

    def test_truncated_packet_rejected(self):
        with pytest.raises(ValueError):
            NTPPacket.decode(b"\x00" * 30)

    def test_version_and_leap_round_trip(self):
        packet = NTPPacket(mode=NTPMode.SERVER, leap=3, version=4, stratum=2, reference_id="1.2.3.4")
        decoded = NTPPacket.decode(packet.encode())
        assert decoded.leap == 3 and decoded.version == 4


class TestKissOfDeath:
    def test_kod_construction(self):
        query = NTPPacket.client_query(10.0)
        kod = NTPPacket.kiss_of_death(query, KissCode.RATE)
        assert kod.is_kiss_of_death
        assert kod.kiss_code == "RATE"
        assert kod.stratum == 0

    def test_kod_round_trip(self):
        kod = NTPPacket.kiss_of_death(NTPPacket.client_query(10.0))
        decoded = NTPPacket.decode(kod.encode())
        assert decoded.is_kiss_of_death and decoded.kiss_code == "RATE"

    def test_regular_response_is_not_kod(self):
        response = NTPPacket.server_response(NTPPacket.client_query(1.0), 2.0)
        assert not response.is_kiss_of_death
        assert response.kiss_code == ""


class TestRefidLeak:
    def test_stratum2_refid_is_upstream_address(self):
        """The information leak used by attack scenario P2."""
        response = NTPPacket.server_response(
            NTPPacket.client_query(1.0), 2.0, stratum=3, reference_id="203.0.113.77"
        )
        decoded = NTPPacket.decode(response.encode())
        assert decoded.reference_id == "203.0.113.77"

    def test_stratum1_refid_is_ascii(self):
        packet = NTPPacket(mode=NTPMode.SERVER, stratum=1, reference_id="GPS")
        assert NTPPacket.decode(packet.encode()).reference_id == "GPS"

    def test_empty_refid(self):
        packet = NTPPacket(mode=NTPMode.SERVER, stratum=2, reference_id="")
        assert NTPPacket.decode(packet.encode()).reference_id == ""
