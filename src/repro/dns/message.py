"""DNS message encoding and decoding (RFC 1035 wire format).

The poisoning attack replaces the tail of an encoded DNS response on the
wire, so the message layer must produce real bytes: a 12-byte header with the
16-bit transaction ID (TXID) and flags, the question section, and resource
records with name compression.  The TXID and the UDP source port are the two
challenge-response values that force off-path attackers to the fragmentation
technique — both live in the *first* fragment of a fragmented response.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from enum import IntEnum

from repro.dns.errors import MessageError
from repro.dns.names import decode_name, encode_name, normalize_name, skip_name
from repro.dns.records import ResourceRecord, RRClass, RRType
from repro.perf import STAGES, perf_counter

DNS_HEADER_LEN = 12

#: Precompiled codecs for the per-message hot path.
_DNS_HEADER = struct.Struct("!HHHHHH")
_QUESTION_FIXED = struct.Struct("!HH")
_RR_FIXED = struct.Struct("!HHIH")

#: Enum lookup tables: a dict hit is markedly cheaper than the Enum call in
#: the per-record decode path; misses fall back to the Enum constructor so
#: unknown values raise exactly the seed's ``ValueError``.
_RRTYPE_BY_VALUE = {int(rtype): rtype for rtype in RRType}
_RRCLASS_BY_VALUE = {int(rclass): rclass for rclass in RRClass}

#: Bound on the decoded-message cache (see :meth:`DNSMessage.decode_cached`).
DECODE_CACHE_MAX_ENTRIES = 2048

#: Decoded-message templates keyed on wire bytes *after* the 2-byte TXID:
#: replayed payloads that differ only in TXID (the poisoning flood, repeated
#: client queries) share one parse.
_DECODE_CACHE: dict[bytes, "DNSMessage"] = {}
#: Conventional maximum size of a UDP DNS response without EDNS0.
MAX_UDP_PAYLOAD = 512
#: Typical EDNS0 advertised size; responses beyond this are truncated or fragmented.
EDNS_UDP_PAYLOAD = 4096


class ResponseCode(IntEnum):
    """DNS response codes."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass
class DNSHeaderFlags:
    """The header flag bits the reproduction uses."""

    qr: bool = False  # response flag
    aa: bool = False  # authoritative answer
    tc: bool = False  # truncated
    rd: bool = True   # recursion desired
    ra: bool = False  # recursion available
    ad: bool = False  # authenticated data (DNSSEC)
    rcode: ResponseCode = ResponseCode.NOERROR

    def encode(self) -> int:
        value = 0
        if self.qr:
            value |= 1 << 15
        if self.aa:
            value |= 1 << 10
        if self.tc:
            value |= 1 << 9
        if self.rd:
            value |= 1 << 8
        if self.ra:
            value |= 1 << 7
        if self.ad:
            value |= 1 << 5
        value |= int(self.rcode) & 0xF
        return value

    @classmethod
    def decode(cls, value: int) -> "DNSHeaderFlags":
        return cls(
            qr=bool(value & (1 << 15)),
            aa=bool(value & (1 << 10)),
            tc=bool(value & (1 << 9)),
            rd=bool(value & (1 << 8)),
            ra=bool(value & (1 << 7)),
            ad=bool(value & (1 << 5)),
            rcode=ResponseCode(value & 0xF),
        )


@dataclass
class DNSQuestion:
    """A question section entry."""

    name: str
    rtype: RRType = RRType.A
    rclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        self.name = normalize_name(self.name)

    @property
    def key(self) -> tuple[str, RRType]:
        """Cache key for the question: (name, type)."""
        return (self.name, self.rtype)


@dataclass
class DNSMessage:
    """A complete DNS message."""

    txid: int = 0
    flags: DNSHeaderFlags = field(default_factory=DNSHeaderFlags)
    questions: list[DNSQuestion] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    authority: list[ResourceRecord] = field(default_factory=list)
    additional: list[ResourceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.txid <= 0xFFFF:
            raise MessageError(f"TXID out of range: {self.txid}")

    # ------------------------------------------------------------ factories
    @classmethod
    def query(cls, name: str, rtype: RRType = RRType.A, txid: int = 0, rd: bool = True) -> "DNSMessage":
        """Build a query message for ``name``/``rtype``."""
        return cls(
            txid=txid,
            flags=DNSHeaderFlags(qr=False, rd=rd),
            questions=[DNSQuestion(name=name, rtype=rtype)],
        )

    def make_response(
        self,
        answers: list[ResourceRecord] | None = None,
        rcode: ResponseCode = ResponseCode.NOERROR,
        authoritative: bool = True,
        recursion_available: bool = False,
        authenticated: bool = False,
    ) -> "DNSMessage":
        """Build a response to this query, echoing TXID and question."""
        return DNSMessage(
            txid=self.txid,
            flags=DNSHeaderFlags(
                qr=True,
                aa=authoritative,
                rd=self.flags.rd,
                ra=recursion_available,
                ad=authenticated,
                rcode=rcode,
            ),
            questions=list(self.questions),
            answers=list(answers or []),
        )

    # ------------------------------------------------------------ properties
    @property
    def is_response(self) -> bool:
        """True for responses (QR bit set)."""
        return self.flags.qr

    @property
    def question(self) -> DNSQuestion:
        """The first (and in practice only) question."""
        if not self.questions:
            raise MessageError("message has no question")
        return self.questions[0]

    def records(self) -> list[ResourceRecord]:
        """All records across the answer, authority and additional sections."""
        return list(self.answers) + list(self.authority) + list(self.additional)

    def wire_cache_key(self) -> tuple | None:
        """A hashable key identifying this message's wire form modulo TXID.

        Two messages with equal keys encode to identical bytes except for
        the leading 2-byte transaction ID, which lets servers cache the
        encoded body and prepend a fresh TXID per query (see
        :meth:`repro.dns.nameserver.AuthoritativeNameserver.encode_response`).
        Returns ``None`` when a record's data is not hashable, in which case
        callers must encode normally.
        """
        key = (
            self.flags.encode(),
            tuple((q.name, int(q.rtype), int(q.rclass)) for q in self.questions),
            tuple(
                (r.name, int(r.rtype), int(r.rclass), r.ttl, r.data)
                for r in self.answers
            ),
            tuple(
                (r.name, int(r.rtype), int(r.rclass), r.ttl, r.data)
                for r in self.authority
            ),
            tuple(
                (r.name, int(r.rtype), int(r.rclass), r.ttl, r.data)
                for r in self.additional
            ),
        )
        try:
            hash(key)
        except TypeError:
            return None
        return key

    # -------------------------------------------------------------- encoding
    def encode(self) -> bytes:
        """Encode to wire bytes with name compression."""
        if STAGES.enabled:
            started = perf_counter()
            wire = self._encode()
            STAGES.add("dns_encode", perf_counter() - started)
            return wire
        return self._encode()

    def _encode(self) -> bytes:
        header = _DNS_HEADER.pack(
            self.txid,
            self.flags.encode(),
            len(self.questions),
            len(self.answers),
            len(self.authority),
            len(self.additional),
        )
        body = bytearray()
        compression: dict[str, int] = {}
        for question in self.questions:
            body += encode_name(question.name, compression, DNS_HEADER_LEN + len(body))
            body += _QUESTION_FIXED.pack(int(question.rtype), int(question.rclass))
        for record in self.records():
            body += encode_name(record.name, compression, DNS_HEADER_LEN + len(body))
            rdata_offset = DNS_HEADER_LEN + len(body) + 10
            rdata = record.encode_rdata(compression, rdata_offset)
            body += _RR_FIXED.pack(
                int(record.rtype), int(record.rclass), record.ttl, len(rdata)
            )
            body += rdata
        return header + bytes(body)

    @classmethod
    def decode(cls, data: bytes) -> "DNSMessage":
        """Decode wire bytes into a message.

        Fast path: the header and question section are decoded eagerly, and
        the record sections are *structurally validated* eagerly (framing,
        name structure, known record types, A/AAAA rdata length — so
        truncated or type-corrupt wire raises here, exactly as the seed
        implementation did) but *materialised* lazily: the returned message
        parses names and rdata into :class:`ResourceRecord` objects only
        when a section is first accessed.  Rejection paths that never look
        at the records — a resolver discarding a response with the wrong
        TXID, a nameserver reading only the question — skip that work
        entirely.
        """
        if STAGES.enabled:
            started = perf_counter()
            message = cls._decode(data)
            STAGES.add("dns_decode", perf_counter() - started)
            return message
        return cls._decode(data)

    @classmethod
    def _decode(cls, data: bytes) -> "DNSMessage":
        size = len(data)
        if size < DNS_HEADER_LEN:
            raise MessageError("truncated DNS header")
        txid, flags_value, qdcount, ancount, nscount, arcount = _DNS_HEADER.unpack_from(
            data
        )
        flags = DNSHeaderFlags.decode(flags_value)
        cursor = DNS_HEADER_LEN
        questions = []
        for _ in range(qdcount):
            name, cursor = decode_name(data, cursor)
            if cursor + 4 > size:
                raise MessageError("truncated question")
            rtype, rclass = _QUESTION_FIXED.unpack_from(data, cursor)
            cursor += 4
            questions.append(
                DNSQuestion(
                    name=name,
                    rtype=_RRTYPE_BY_VALUE.get(rtype) or RRType(rtype),
                    rclass=_RRCLASS_BY_VALUE.get(rclass) or RRClass(rclass),
                )
            )
        if not (ancount or nscount or arcount):
            return cls(txid=txid, flags=flags, questions=questions)
        entries = []
        for _ in range(ancount + nscount + arcount):
            name_offset = cursor
            cursor = skip_name(data, cursor)
            if cursor + 10 > size:
                raise MessageError("truncated resource record")
            rtype, rclass, ttl, rdlength = _RR_FIXED.unpack_from(data, cursor)
            cursor += 10
            if cursor + rdlength > size:
                raise MessageError("truncated rdata")
            rtype_enum = _RRTYPE_BY_VALUE.get(rtype) or RRType(rtype)
            rclass_enum = _RRCLASS_BY_VALUE.get(rclass) or RRClass(rclass)
            if rtype_enum is RRType.A or rtype_enum is RRType.AAAA:
                if rdlength != 4:
                    raise MessageError("A record rdata must be 4 bytes")
            elif rtype_enum is RRType.NS or rtype_enum is RRType.CNAME:
                skip_name(data, cursor)
            elif rtype_enum is RRType.SOA:
                skip_name(data, skip_name(data, cursor))
            entries.append((name_offset, rtype_enum, rclass_enum, ttl, cursor, rdlength))
            cursor += rdlength
        return _LazyDNSMessage(
            txid, flags, questions, data, (ancount, nscount, arcount), entries
        )

    @classmethod
    def decode_cached(cls, data: bytes) -> "DNSMessage":
        """Decode wire bytes, reusing the parse of previously seen payloads.

        The cache key is the wire form *minus* the leading TXID, mirroring
        the nameserver's encode cache: a poisoning attacker replays the same
        response body under thousands of guessed TXIDs, and a busy resolver
        sees the same question body from many clients.  A hit clones the
        cached template — fresh message object, fresh section lists, fresh
        flags — sharing the (conventionally immutable) question and record
        objects, so parsing is skipped entirely.

        The cache is bounded: it is cleared wholesale when full, the same
        policy as the nameserver encode cache.
        """
        if STAGES.enabled:
            started = perf_counter()
            message = cls._decode_cached(data)
            STAGES.add("dns_decode", perf_counter() - started)
            return message
        return cls._decode_cached(data)

    @classmethod
    def _decode_cached(cls, data: bytes) -> "DNSMessage":
        body = data[2:]
        template = _DECODE_CACHE.get(body)
        if template is None:
            template = cls._decode(data)
            # A compression pointer can target offsets 0/1 — the TXID
            # itself — making the parse depend on bytes the cache key
            # strips.  Such a pointer necessarily contains the byte pair
            # C0 00 or C0 01 *within the body* (names only ever live past
            # the header), so bodies containing either pair are never
            # cached; false positives in rdata merely skip the cache.
            # Cacheability is a property of the body alone, so cache hits
            # need no scan.
            if b"\xc0\x00" in body or b"\xc0\x01" in body:
                return template
            if len(_DECODE_CACHE) >= DECODE_CACHE_MAX_ENTRIES:
                _DECODE_CACHE.clear()
            _DECODE_CACHE[body] = template
        return template._clone_with_txid((data[0] << 8) | data[1])

    def _clone_with_txid(self, txid: int) -> "DNSMessage":
        """A shallow copy with ``txid``: fresh lists, shared question/record objects."""
        clone = DNSMessage.__new__(DNSMessage)
        clone.txid = txid
        clone.flags = replace(self.flags)
        clone.questions = list(self.questions)
        clone.answers = list(self.answers)
        clone.authority = list(self.authority)
        clone.additional = list(self.additional)
        return clone


class _LazyDNSMessage(DNSMessage):
    """A decoded message whose record sections materialise on first access.

    Header and questions are plain attributes (decoded eagerly); the three
    record sections are properties backed by a parse of the retained wire
    bytes that runs at most once per decode *template* — clones made by the
    decode cache share their template's parse and only copy the lists.
    ``DNSMessage.decode`` pre-validates record framing, so materialisation
    cannot raise for truncation; only exotic rdata-content errors (which the
    seed implementation also surfaced as non-``MessageError`` exceptions)
    remain deferred.
    """

    def __init__(
        self,
        txid: int,
        flags: DNSHeaderFlags,
        questions: list[DNSQuestion],
        wire: bytes,
        counts: tuple[int, int, int],
        entries: list[tuple],
    ) -> None:
        self.txid = txid
        self.flags = flags
        self.questions = questions
        self._wire = wire
        self._counts = counts
        self._entries = entries
        self._template: "_LazyDNSMessage" = self
        self._sections: list[list[ResourceRecord]] | None = None

    # ------------------------------------------------------- materialisation
    def _materialize(self) -> list[list[ResourceRecord]]:
        sections = self._sections
        if sections is not None:
            return sections
        template = self._template
        if template is not self:
            self._sections = sections = [list(s) for s in template._materialize()]
            return sections
        wire = self._wire
        records = []
        for name_offset, rtype, rclass, ttl, rdata_offset, rdlength in self._entries:
            name, _ = decode_name(wire, name_offset)
            data = ResourceRecord.decode_rdata(
                rtype, wire[rdata_offset : rdata_offset + rdlength], wire, rdata_offset
            )
            records.append(
                ResourceRecord(name=name, rtype=rtype, ttl=ttl, data=data, rclass=rclass)
            )
        ancount, nscount, _arcount = self._counts
        self._sections = sections = [
            records[:ancount],
            records[ancount : ancount + nscount],
            records[ancount + nscount :],
        ]
        return sections

    def _clone_with_txid(self, txid: int) -> "DNSMessage":
        clone = _LazyDNSMessage.__new__(_LazyDNSMessage)
        clone.txid = txid
        clone.flags = replace(self.flags)
        clone.questions = list(self.questions)
        clone._wire = self._wire
        clone._counts = self._counts
        clone._entries = self._entries
        clone._template = self._template
        clone._sections = None
        return clone

    # ------------------------------------------------------------- sections
    @property
    def answers(self) -> list[ResourceRecord]:
        return self._materialize()[0]

    @answers.setter
    def answers(self, value: list[ResourceRecord]) -> None:
        self._materialize()[0] = value

    @property
    def authority(self) -> list[ResourceRecord]:
        return self._materialize()[1]

    @authority.setter
    def authority(self, value: list[ResourceRecord]) -> None:
        self._materialize()[1] = value

    @property
    def additional(self) -> list[ResourceRecord]:
        return self._materialize()[2]

    @additional.setter
    def additional(self, value: list[ResourceRecord]) -> None:
        self._materialize()[2] = value

    # ----------------------------------------------------------- comparisons
    def __eq__(self, other: object) -> bool:
        # The dataclass-generated __eq__ requires identical classes; a lazy
        # decode result must still compare equal to an equivalent eagerly
        # built message.
        if isinstance(other, DNSMessage):
            return (
                self.txid,
                self.flags,
                self.questions,
                self.answers,
                self.authority,
                self.additional,
            ) == (
                other.txid,
                other.flags,
                other.questions,
                other.answers,
                other.authority,
                other.additional,
            )
        return NotImplemented

    __hash__ = None


@dataclass
class RecordOffsets:
    """Byte offsets of one resource record inside an encoded message.

    Used by the fragment-replacement attack to locate, within the raw wire
    bytes, the fields it may rewrite (the rdata of A records) and the fields
    it may sacrifice to fix the UDP checksum (the low half of a TTL).
    """

    section: str
    index: int
    name_offset: int
    type_offset: int
    ttl_offset: int
    rdlength_offset: int
    rdata_offset: int
    rdlength: int
    rtype: RRType

    @property
    def ttl_low_offset(self) -> int:
        """Offset of the low 16 bits of the TTL field."""
        return self.ttl_offset + 2

    @property
    def end_offset(self) -> int:
        """Offset just past this record."""
        return self.rdata_offset + self.rdlength


def record_offsets(data: bytes) -> list[RecordOffsets]:
    """Walk an encoded DNS message and report each record's field offsets."""
    if len(data) < DNS_HEADER_LEN:
        raise MessageError("truncated DNS header")
    _txid, _flags, qdcount, ancount, nscount, arcount = _DNS_HEADER.unpack(
        data[:DNS_HEADER_LEN]
    )
    cursor = DNS_HEADER_LEN
    for _ in range(qdcount):
        _name, cursor = decode_name(data, cursor)
        if cursor + 4 > len(data):
            raise MessageError("truncated question")
        cursor += 4
    offsets: list[RecordOffsets] = []
    for section, count in (("answer", ancount), ("authority", nscount), ("additional", arcount)):
        for index in range(count):
            name_offset = cursor
            _name, cursor = decode_name(data, cursor)
            if cursor + 10 > len(data):
                raise MessageError("truncated resource record")
            rtype, _rclass, _ttl, rdlength = _RR_FIXED.unpack(
                data[cursor : cursor + 10]
            )
            if cursor + 10 + rdlength > len(data):
                raise MessageError("truncated rdata")
            offsets.append(
                RecordOffsets(
                    section=section,
                    index=index,
                    name_offset=name_offset,
                    type_offset=cursor,
                    ttl_offset=cursor + 4,
                    rdlength_offset=cursor + 8,
                    rdata_offset=cursor + 10,
                    rdlength=rdlength,
                    rtype=RRType(rtype),
                )
            )
            cursor += 10 + rdlength
    return offsets


def max_a_records_in_udp_response(
    name: str = "pool.ntp.org", payload_limit: int = MAX_UDP_PAYLOAD
) -> int:
    """How many A records for ``name`` fit in an unfragmented UDP response.

    The paper states an attacker can fit "up to 89" addresses in a single
    non-fragmented UDP response to a ``pool.ntp.org`` query (section VI-C).
    With name compression each additional A record costs 16 bytes (2-byte
    compression pointer + 10 bytes of fixed fields + 4 bytes of address), so
    this helper computes the exact bound for any name and payload limit.
    """
    base = len(DNSMessage.query(name).encode())
    per_record = 2 + 10 + 4
    return max(0, (payload_limit - base) // per_record)
