"""The resolver cache — the asset the attacker poisons.

Entries are keyed by ``(owner name, record type)`` and expire according to
their TTL.  The cache exposes exactly the observable behaviours the paper's
measurements rely on:

* :meth:`DNSCache.lookup` with the current time returns records with their
  *remaining* TTL, which is what the cache-snooping study (Table IV) and the
  TTL histogram (Figure 6) observe from outside,
* a poisoned entry with a very long TTL shadows subsequent upstream queries,
  which is what ends Chronos' pool-generation early (section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.dns.names import normalize_name
from repro.dns.records import ResourceRecord, RRType


@dataclass
class CacheEntry:
    """An rrset stored in the cache with its insertion time."""

    records: list[ResourceRecord]
    inserted_at: float
    ttl: int

    def remaining_ttl(self, now: float) -> float:
        """Seconds of validity left at time ``now`` (may be negative)."""
        return self.ttl - (now - self.inserted_at)

    def expired(self, now: float) -> bool:
        """True once the entry's TTL has elapsed."""
        return self.remaining_ttl(now) <= 0


@dataclass
class DNSCache:
    """A TTL-respecting cache of rrsets.

    ``max_ttl`` caps the TTL the cache will honour (many resolvers clamp to a
    week); the Chronos attack relies on the cap being no smaller than 24
    hours so a single poisoned record outlives the whole pool-generation
    period.
    """

    max_ttl: int = 7 * 24 * 3600
    entries: dict[tuple[str, RRType], CacheEntry] = field(default_factory=dict)
    insertions: int = 0
    hits: int = 0
    misses: int = 0

    def store(self, records: Iterable[ResourceRecord], now: float) -> None:
        """Insert records grouped by (name, type); later stores overwrite."""
        grouped: dict[tuple[str, RRType], list[ResourceRecord]] = {}
        for record in records:
            grouped.setdefault(record.key, []).append(record)
        for key, rrset in grouped.items():
            ttl = min(min(r.ttl for r in rrset), self.max_ttl)
            self.entries[key] = CacheEntry(records=rrset, inserted_at=now, ttl=ttl)
            self.insertions += 1

    def lookup(self, name: str, rtype: RRType, now: float) -> Optional[list[ResourceRecord]]:
        """Return cached records with decremented TTLs, or None on a miss."""
        key = (normalize_name(name), rtype)
        entry = self.entries.get(key)
        if entry is None or entry.expired(now):
            if entry is not None:
                del self.entries[key]
            self.misses += 1
            return None
        self.hits += 1
        remaining = int(entry.remaining_ttl(now))
        return [record.with_ttl(remaining) for record in entry.records]

    def contains(self, name: str, rtype: RRType, now: float) -> bool:
        """True when a live entry exists without counting a hit or a miss."""
        key = (normalize_name(name), rtype)
        entry = self.entries.get(key)
        return entry is not None and not entry.expired(now)

    def remaining_ttl(self, name: str, rtype: RRType, now: float) -> Optional[float]:
        """Remaining TTL of a cached entry, or None when absent/expired."""
        key = (normalize_name(name), rtype)
        entry = self.entries.get(key)
        if entry is None or entry.expired(now):
            return None
        return entry.remaining_ttl(now)

    def evict(self, name: str, rtype: RRType) -> bool:
        """Remove an entry (used by cache-eviction attack variants)."""
        return self.entries.pop((normalize_name(name), rtype), None) is not None

    def flush(self) -> None:
        """Empty the cache."""
        self.entries.clear()

    def size(self) -> int:
        """Number of stored rrsets (including possibly expired ones)."""
        return len(self.entries)
