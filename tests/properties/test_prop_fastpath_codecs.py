"""Fast-path codec equivalence: the rework must be byte-identical to the seed.

The netsim fast path replaced the seed's encoding routines (per-call struct
format strings, slice-and-concat header assembly, Python word-loop checksum,
uncached name encoding) with precompiled/cached variants.  These property
tests pin the new implementations against *reference copies of the seed
implementations* embedded below, plus full round-trips, so any divergence —
however small — fails loudly.
"""

from __future__ import annotations

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import DNSHeaderFlags, DNSMessage
from repro.dns.names import encode_name
from repro.dns.records import a_record
from repro.netsim.addresses import int_to_ip, ip_to_int
from repro.netsim.checksum import internet_checksum, ones_complement_sum
from repro.netsim.packet import IPProtocol, IPv4Packet
from repro.netsim.udp import UDPDatagram, decode_udp, encode_udp, udp_checksum

# ----------------------------------------------------------------- strategies
octet = st.integers(min_value=0, max_value=255)
ip_addresses = st.builds(lambda a, b, c, d: f"{a}.{b}.{c}.{d}", octet, octet, octet, octet)
ports = st.integers(min_value=0, max_value=0xFFFF)
payloads = st.binary(min_size=0, max_size=256)

labels = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
).filter(lambda l: not l.startswith("-"))
names = st.lists(labels, min_size=1, max_size=4).map(".".join)


# ------------------------------------------------- reference (seed) encoders
def seed_ones_complement_sum(data: bytes) -> int:
    """Verbatim seed word loop (git fc48653, netsim/checksum.py)."""
    if len(data) % 2 == 1:
        data = data + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def seed_ipv4_encode(packet: IPv4Packet) -> bytes:
    """Verbatim seed header assembly (slice-and-concat checksum patch)."""
    version_ihl = (4 << 4) | 5
    flags = 0
    if packet.dont_fragment:
        flags |= 0x2
    if packet.more_fragments:
        flags |= 0x1
    flags_fragoff = (flags << 13) | packet.fragment_offset
    header_wo_checksum = struct.pack(
        "!BBHHHBBH4s4s",
        version_ihl,
        0,
        packet.total_length,
        packet.ipid,
        flags_fragoff,
        packet.ttl,
        int(packet.protocol),
        0,
        ip_to_int(packet.src).to_bytes(4, "big"),
        ip_to_int(packet.dst).to_bytes(4, "big"),
    )
    checksum = (~seed_ones_complement_sum(header_wo_checksum)) & 0xFFFF
    header = header_wo_checksum[:10] + struct.pack("!H", checksum) + header_wo_checksum[12:]
    return header + packet.payload


def seed_udp_encode(src_ip: str, dst_ip: str, datagram: UDPDatagram) -> bytes:
    """Verbatim seed UDP encoding (per-call struct formats)."""
    pseudo = struct.pack(
        "!4s4sBBH",
        ip_to_int(src_ip).to_bytes(4, "big"),
        ip_to_int(dst_ip).to_bytes(4, "big"),
        0,
        17,
        datagram.length,
    )
    header = struct.pack(
        "!HHHH", datagram.src_port, datagram.dst_port, datagram.length, 0
    )
    checksum = (~seed_ones_complement_sum(pseudo + header + datagram.payload)) & 0xFFFF
    checksum = checksum if checksum != 0 else 0xFFFF
    header = struct.pack(
        "!HHHH", datagram.src_port, datagram.dst_port, datagram.length, checksum
    )
    return header + datagram.payload


def seed_encode_name(name, compression, offset):
    """Verbatim seed name encoder (per-call split/join, no caching)."""
    if name == "":
        return b"\x00"
    labels_ = name.split(".")
    encoded = bytearray()
    for index in range(len(labels_)):
        suffix = ".".join(labels_[index:])
        if compression is not None and suffix in compression:
            pointer = compression[suffix]
            encoded += bytes([0xC0 | (pointer >> 8), pointer & 0xFF])
            return bytes(encoded)
        if compression is not None and offset + len(encoded) < 0x3FFF:
            compression[suffix] = offset + len(encoded)
        label = labels_[index].encode("ascii")
        encoded += bytes([len(label)]) + label
    encoded += b"\x00"
    return bytes(encoded)


# ------------------------------------------------------------------ checksums
class TestChecksumEquivalence:
    @given(payloads)
    @settings(max_examples=300)
    def test_ones_complement_sum_matches_seed_word_loop(self, data):
        assert ones_complement_sum(data) == seed_ones_complement_sum(data)

    @given(payloads)
    def test_internet_checksum_matches_seed(self, data):
        assert internet_checksum(data) == (~seed_ones_complement_sum(data)) & 0xFFFF

    def test_multiple_of_0xffff_folds_to_0xffff_not_zero(self):
        # The regression the modulo trick could have introduced: a positive
        # sum that is an exact multiple of 0xFFFF folds to 0xFFFF.
        assert ones_complement_sum(b"\xff\xff") == 0xFFFF
        assert ones_complement_sum(b"\xff\xfe\x00\x01") == 0xFFFF
        assert ones_complement_sum(b"") == 0
        assert ones_complement_sum(b"\x00\x00") == 0


# ----------------------------------------------------------------- IPv4 codec
class TestIPv4Equivalence:
    @given(
        src=ip_addresses,
        dst=ip_addresses,
        payload=payloads,
        ipid=st.integers(min_value=0, max_value=0xFFFF),
        ttl=st.integers(min_value=0, max_value=255),
        df=st.booleans(),
        mf=st.booleans(),
        frag=st.integers(min_value=0, max_value=0x1FFF),
    )
    @settings(max_examples=300)
    def test_encode_matches_seed_and_round_trips(
        self, src, dst, payload, ipid, ttl, df, mf, frag
    ):
        packet = IPv4Packet(
            src=src,
            dst=dst,
            protocol=IPProtocol.UDP,
            payload=payload,
            ipid=ipid,
            ttl=ttl,
            dont_fragment=df,
            more_fragments=mf,
            fragment_offset=frag,
        )
        wire = packet.encode()
        assert wire == seed_ipv4_encode(packet)
        decoded = IPv4Packet.decode(wire)
        assert decoded.src == src and decoded.dst == dst
        assert decoded.payload == payload
        assert decoded.ipid == ipid and decoded.ttl == ttl
        assert decoded.dont_fragment == df and decoded.more_fragments == mf
        assert decoded.fragment_offset == frag


# ------------------------------------------------------------------ UDP codec
class TestUDPEquivalence:
    @given(src=ip_addresses, dst=ip_addresses, sport=ports, dport=ports, payload=payloads)
    @settings(max_examples=300)
    def test_encode_matches_seed_and_round_trips(self, src, dst, sport, dport, payload):
        datagram = UDPDatagram(sport, dport, payload)
        wire = encode_udp(src, dst, datagram)
        assert wire == seed_udp_encode(src, dst, datagram)
        decoded = decode_udp(src, dst, wire)
        assert decoded == datagram

    @given(src=ip_addresses, dst=ip_addresses, payload=payloads)
    def test_checksum_never_zero_on_wire(self, src, dst, payload):
        assert udp_checksum(src, dst, UDPDatagram(1, 2, payload)) != 0


# ------------------------------------------------------------------ addresses
class TestAddressCacheEquivalence:
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_int_round_trip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @given(ip_addresses)
    def test_string_round_trip(self, address):
        assert int_to_ip(ip_to_int(address)) == address


# ------------------------------------------------------------------ DNS codec
class TestDNSNameEquivalence:
    @given(st.lists(names, min_size=1, max_size=6))
    @settings(max_examples=300)
    def test_compressed_encoding_matches_seed(self, name_list):
        # Encode the same sequence of names through both implementations,
        # sharing one evolving compression map each, as message encoding does.
        fast_compression: dict[str, int] = {}
        seed_compression: dict[str, int] = {}
        offset = 12
        for name in name_list:
            fast = encode_name(name, fast_compression, offset)
            seed = seed_encode_name(name, seed_compression, offset)
            assert fast == seed
            assert fast_compression == seed_compression
            offset += len(fast) + 4

    @given(names)
    def test_uncompressed_encoding_matches_seed(self, name):
        assert encode_name(name, None, 0) == seed_encode_name(name, None, 0)


class TestDNSMessageRoundTrip:
    @given(
        qname=names,
        txid=st.integers(min_value=0, max_value=0xFFFF),
        addresses=st.lists(ip_addresses, min_size=1, max_size=8),
        ttl=st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=200)
    def test_response_round_trips_bytewise(self, qname, txid, addresses, ttl):
        query = DNSMessage.query(qname, txid=txid)
        response = query.make_response(
            answers=[a_record(qname, address, ttl=ttl) for address in addresses]
        )
        wire = response.encode()
        decoded = DNSMessage.decode(wire)
        # Re-encoding the decoded message must reproduce the exact bytes:
        # encode and decode are mutual inverses on compressed messages.
        assert decoded.encode() == wire
        assert decoded.txid == txid
        assert [str(r.data) for r in decoded.answers] == addresses

    @given(qname=names, txid=st.integers(min_value=0, max_value=0xFFFF))
    def test_flags_survive_round_trip(self, qname, txid):
        message = DNSMessage(
            txid=txid,
            flags=DNSHeaderFlags(qr=True, aa=True, ra=True),
            questions=[],
        )
        assert DNSMessage.decode(message.encode()).flags == message.flags
