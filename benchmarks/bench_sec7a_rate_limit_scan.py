"""Section VII-A — rate limiting of pool.ntp.org NTP servers.

Runs the paper's scan (64 queries per server at 1 Hz, first-half/second-half
comparison, KoD detection) against a synthetic pool whose ground-truth
marginals default to the published values, and checks that the methodology
recovers them: ~33 % KoD senders, ~38 % rate limiters.
"""

from __future__ import annotations

from repro.measurement.rate_limit_scan import RateLimitScan
from repro.measurement.report import format_percentage, format_table
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.ntp.pool import (
    PAPER_KOD_FRACTION,
    PAPER_RATE_LIMIT_FRACTION,
    build_pool_population,
)

#: Scaled-down pool size (the paper scanned 2432 servers; 400 keeps the
#: benchmark around a minute while preserving the fractions).
SCAN_POOL_SIZE = 400


def run_scan():
    simulator = Simulator(seed=23)
    network = Network(simulator)
    pool = build_pool_population(simulator, network, size=SCAN_POOL_SIZE)
    scanner = network.add_host("scanner", "198.18.0.10")
    scan = RateLimitScan(scanner, simulator, pool.addresses, concurrent_servers=128)
    return pool, scan.run()


def test_sec7a_rate_limit_scan(run_once):
    pool, report = run_once(run_scan)
    print()
    print(
        format_table(
            ["Metric", "Measured", "Ground truth", "Paper"],
            [
                ["servers scanned", report.servers_scanned, len(pool.specs), 2432],
                [
                    "send KoD",
                    format_percentage(report.kod_fraction),
                    format_percentage(pool.kod_fraction()),
                    "33%",
                ],
                [
                    "rate limiting",
                    format_percentage(report.rate_limiting_fraction),
                    format_percentage(pool.rate_limiting_fraction()),
                    "38%",
                ],
            ],
            title="Section VII-A — rate limiting scan of pool NTP servers",
        )
    )
    assert report.servers_scanned == SCAN_POOL_SIZE
    # The methodology recovers the ground truth exactly (no false positives).
    assert abs(report.rate_limiting_fraction - pool.rate_limiting_fraction()) < 0.01
    assert abs(report.kod_fraction - pool.kod_fraction()) < 0.01
    # And the ground truth reproduces the paper's marginals.
    assert abs(report.rate_limiting_fraction - PAPER_RATE_LIMIT_FRACTION) < 0.03
    assert abs(report.kod_fraction - PAPER_KOD_FRACTION) < 0.03
