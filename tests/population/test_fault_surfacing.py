"""Satellites: extended FAULT_KINDS + FaultStats surfaced through the stack.

Fleet specs can now express every netsim fault component (corruption,
partition, latency_spike joined the mapped kinds), and the evidence the
faults actually fired flows upward: ``run_fleet`` documents carry the
network's ``fault_stats``, streaming aggregates fold and merge them, and
landscape cells record them alongside the success rates.
"""

from __future__ import annotations

import pytest

from repro.netsim.faults import (
    Corruption,
    FaultStats,
    LatencySpike,
    Partition,
)
from repro.population.aggregate import StreamingAggregate
from repro.population.fleet import _fault_components, run_fleet
from repro.population.spec import (
    FAULT_KINDS,
    WINDOWED_FAULT_KINDS,
    FaultRegimeSpec,
    PopulationSpec,
    SpecError,
)


class TestExtendedFaultKinds:
    def test_all_netsim_kinds_are_expressible(self):
        assert set(FAULT_KINDS) == {
            "clean",
            "bursty_loss",
            "jitter",
            "duplication",
            "corruption",
            "partition",
            "latency_spike",
        }
        assert set(WINDOWED_FAULT_KINDS) == {"partition", "latency_spike"}

    def test_corruption_maps_to_component(self):
        regime = FaultRegimeSpec("noisy", kind="corruption", probability=0.3)
        assert _fault_components(regime) == (Corruption(0.3),)
        assert _fault_components(
            FaultRegimeSpec("off", kind="corruption", probability=0.0)
        ) == ()

    def test_partition_maps_window_not_probability(self):
        regime = FaultRegimeSpec(
            "cut", kind="partition", start=10.0, duration=5.0
        )
        assert _fault_components(regime) == (Partition(10.0, 5.0),)
        # Zero-duration windows are inert and dropped.
        assert _fault_components(FaultRegimeSpec("cut", kind="partition")) == ()

    def test_latency_spike_maps_window_with_magnitude(self):
        regime = FaultRegimeSpec(
            "slow", kind="latency_spike", start=1.0, duration=2.0, magnitude=0.5
        )
        assert _fault_components(regime) == (LatencySpike(1.0, 2.0, extra=0.5),)
        # magnitude defaults to 0.25 s of extra latency
        regime = FaultRegimeSpec(
            "slow", kind="latency_spike", start=1.0, duration=2.0
        )
        assert _fault_components(regime) == (LatencySpike(1.0, 2.0, extra=0.25),)

    def test_windows_validated_non_negative(self):
        with pytest.raises(SpecError):
            FaultRegimeSpec("bad", kind="partition", start=-1.0)
        with pytest.raises(SpecError):
            FaultRegimeSpec("bad", kind="partition", duration=-1.0)

    def test_spec_round_trips_windowed_regimes(self):
        spec = PopulationSpec(
            size=2,
            client_mix={"ntpd": 1.0},
            fault_mix={"cut": 1.0},
            fault_regimes=(
                FaultRegimeSpec("cut", kind="partition", start=5.0, duration=9.0),
            ),
        )
        clone = PopulationSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.fault_regime_table()["cut"].duration == 9.0


class TestAggregateFaultCounters:
    def test_fold_merge_and_round_trip(self):
        left = StreamingAggregate()
        left.fold("ntpd", True)
        left.fold_faults({"packets": 10, "dropped_partition": 3})
        right = StreamingAggregate()
        right.fold("chrony", False)
        right.fold_faults({"packets": 5, "duplicated": 2})
        left.merge(right)
        assert left.faults == {
            "packets": 15,
            "dropped_partition": 3,
            "duplicated": 2,
        }
        document = left.to_document()
        assert document["fault_stats"] == left.faults
        clone = StreamingAggregate.from_document(document)
        assert clone.faults == left.faults

    def test_fault_stats_document_round_trip(self):
        stats = FaultStats(packets=7, corrupted=2, duplicated=1)
        clone = FaultStats.from_document(stats.to_document())
        assert clone == stats
        # Unknown keys are ignored, not fatal (forward compatibility).
        assert FaultStats.from_document({"packets": 1, "future": 9}).packets == 1


class TestFleetSurfacing:
    def test_fleet_document_counts_fired_faults(self):
        spec = PopulationSpec(
            size=2,
            client_mix={"ntpd": 1.0},
            pool_size=8,
            warmup_seconds=60.0,
            max_duration_hours=0.05,
            fault_mix={"flaky": 1.0},
            fault_regimes=(
                FaultRegimeSpec("flaky", kind="duplication", probability=0.5),
            ),
        )
        document = run_fleet(spec, seed=0)
        assert document["fault_stats"]["duplicated"] > 0
        assert document["fault_stats"]["packets"] > 0
        assert (
            document["aggregate"]["fault_stats"] == document["fault_stats"]
        )
        assert "packets_dropped" in document

    def test_clean_fleet_reports_all_zero_stats(self):
        spec = PopulationSpec(
            size=1,
            client_mix={"ntpd": 1.0},
            pool_size=8,
            warmup_seconds=60.0,
            max_duration_hours=0.05,
        )
        document = run_fleet(spec, seed=0)
        assert all(v == 0 for v in document["fault_stats"].values())


class TestLandscapeSurfacing:
    def test_cells_carry_fault_stats(self, tmp_path):
        from repro.experiments.runner import ExperimentRunner
        from repro.experiments.store import RunStore
        from repro.population.landscape import sweep_landscape

        base = PopulationSpec(
            size=2,
            client_mix={"ntpd": 1.0},
            pool_size=8,
            warmup_seconds=60.0,
            max_duration_hours=0.05,
            fault_mix={"flaky": 1.0},
            fault_regimes=(
                FaultRegimeSpec("flaky", kind="duplication", probability=0.5),
            ),
        )
        store = RunStore(str(tmp_path))
        grid = sweep_landscape(
            store,
            "faulted",
            base,
            "size",
            (1.0, 2.0),
            "pool_rate_limit_fraction",
            (1.0,),
            seed=0,
            runner=ExperimentRunner(max_workers=1),
        )
        cells = grid["cells"]
        assert len(cells) == 2
        for cell in cells:
            assert cell["fault_stats"]["duplicated"] > 0
        assert store.manifest(grid["sweep_id"])["status"] == "complete"
