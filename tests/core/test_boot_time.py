"""Tests for the boot-time attack orchestration (section IV-A)."""

import pytest

from repro.core.boot_time import BootTimeAttack
from repro.ntp.clients import NtpdateClient, OpenNTPDClient, SystemdTimesyncdClient
from repro.ntp.clients.base import NTPClientConfig
from repro.testbed import NAMESERVER_IP


def sntp_single_domain_config() -> NTPClientConfig:
    return SystemdTimesyncdClient.default_config()


def make_attack(testbed, **kwargs) -> BootTimeAttack:
    return BootTimeAttack(
        attacker=testbed.attacker,
        simulator=testbed.simulator,
        resolver=testbed.resolver,
        nameserver_ip=NAMESERVER_IP,
        **kwargs,
    )


class TestBootTimeAttack:
    def test_full_chain_shifts_a_booting_sntp_client(self, predictable_testbed):
        attack = make_attack(predictable_testbed)
        attack.launch_poisoning()
        predictable_testbed.run_for(10)
        victim = predictable_testbed.add_client(SystemdTimesyncdClient)
        result = attack.evaluate(victim, observation_period=400)
        assert result.poisoned
        assert result.client_used_attacker_server
        assert result.success
        assert result.clock_shift_achieved == pytest.approx(-500.0, abs=5.0)

    def test_ntpdate_invocation_is_attackable(self, predictable_testbed):
        attack = make_attack(predictable_testbed)
        attack.launch_poisoning()
        predictable_testbed.run_for(10)
        victim = predictable_testbed.add_client(NtpdateClient)
        result = attack.evaluate(victim, observation_period=120)
        assert result.success

    def test_trigger_via_open_resolver_variant(self, predictable_testbed):
        attack = make_attack(predictable_testbed, trigger_via_open_resolver=True)
        attack.launch_poisoning()
        # The trigger fires at t=45, shortly after the second plant round.
        predictable_testbed.run_for(60)
        assert predictable_testbed.resolver_poisoned("pool.ntp.org")

    def test_openntpd_with_constraint_resists_boot_attack(self, predictable_testbed):
        attack = make_attack(predictable_testbed)
        attack.launch_poisoning()
        predictable_testbed.run_for(10)
        victim = predictable_testbed.add_client(OpenNTPDClient)
        victim.tls_constraint = True
        result = attack.evaluate(victim, observation_period=600)
        assert result.client_used_attacker_server  # it still talks to the attacker...
        assert not result.success  # ...but refuses the shifted time

    def test_unpoisoned_boot_is_clean(self, predictable_testbed):
        attack = make_attack(predictable_testbed)
        # No poisoning launched: the client must synchronise honestly.
        victim = predictable_testbed.add_client(SystemdTimesyncdClient)
        result = attack.evaluate(victim, observation_period=300)
        assert not result.client_used_attacker_server
        assert not result.success
        assert abs(result.clock_shift_achieved) < 1.0

    def test_result_records_time_to_shift(self, predictable_testbed):
        attack = make_attack(predictable_testbed)
        attack.launch_poisoning()
        predictable_testbed.run_for(10)
        victim = predictable_testbed.add_client(SystemdTimesyncdClient)
        result = attack.evaluate(victim, observation_period=400)
        assert result.time_to_shift is not None
        assert result.time_to_shift < 300
