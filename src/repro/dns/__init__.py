"""DNS substrate: wire format, authoritative servers, caching resolvers, DNSSEC.

This package implements everything the attack needs from DNS:

* byte-accurate message encoding/decoding (header, question, resource
  records, name compression) so that response *sizes* are realistic — the
  fragmentation attack only applies to responses large enough to fragment,
  and the Chronos attack depends on how many A records fit in a single
  unfragmented UDP response (up to 89, paper section VI-C),
* authoritative nameservers, including a model of the ``pool.ntp.org``
  zone that hands out four random pool addresses with a 150-second TTL,
* caching recursive resolvers with source-port and TXID randomisation,
  bailiwick checking, RD-bit handling (the hook for the cache-snooping
  measurements) and optional DNSSEC validation,
* a stub resolver API used by the NTP clients, and
* a deliberately simplified DNSSEC layer (signing is a keyed digest, not
  real cryptography) sufficient to reproduce the validation-rate study.
"""

from repro.dns.names import encode_name, decode_name, normalize_name, name_in_zone
from repro.dns.records import (
    RRType,
    RRClass,
    ResourceRecord,
    a_record,
    ns_record,
    cname_record,
    txt_record,
    soa_record,
    rrsig_record,
    dnskey_record,
)
from repro.dns.message import DNSMessage, DNSQuestion, DNSHeaderFlags, ResponseCode
from repro.dns.zone import Zone
from repro.dns.cache import DNSCache, CacheEntry
from repro.dns.dnssec import ZoneSigningKey, sign_zone, validate_rrset
from repro.dns.nameserver import AuthoritativeNameserver, PoolNameserver
from repro.dns.resolver import RecursiveResolver, ResolverConfig
from repro.dns.stub import StubResolver, ResolutionResult

__all__ = [
    "encode_name",
    "decode_name",
    "normalize_name",
    "name_in_zone",
    "RRType",
    "RRClass",
    "ResourceRecord",
    "a_record",
    "ns_record",
    "cname_record",
    "txt_record",
    "soa_record",
    "rrsig_record",
    "dnskey_record",
    "DNSMessage",
    "DNSQuestion",
    "DNSHeaderFlags",
    "ResponseCode",
    "Zone",
    "DNSCache",
    "CacheEntry",
    "ZoneSigningKey",
    "sign_zone",
    "validate_rrset",
    "AuthoritativeNameserver",
    "PoolNameserver",
    "RecursiveResolver",
    "ResolverConfig",
    "StubResolver",
    "ResolutionResult",
]
