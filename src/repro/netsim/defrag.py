"""The IP defragmentation cache — the attack's point of entry.

When a host receives an IP fragment it stores it in a per-``(src, dst,
protocol, IPID)`` bucket until the remaining fragments arrive or a timeout
expires.  The paper's poisoning primitive (section III) works by planting a
spoofed *second* fragment in the victim resolver's defragmentation cache
ahead of time; when the genuine first fragment from the nameserver arrives it
reassembles with the attacker's fragment.

Two properties of real caches matter for the attack and are modelled here:

* the reassembly timeout (measured by the authors as 30 s on Linux and
  60–120 s on Windows; RFC 2460 specifies 60 s), which determines how often
  the attacker must refresh its planted fragment, and
* the limit on how many fragments with *different IPIDs* a host will hold for
  the same source/destination pair (64 on patched Linux, 100 on Windows),
  which bounds how many candidate IPIDs the attacker can spray when the IPID
  is not exactly predictable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.netsim.fragmentation import fragments_complete, reassemble_fragments
from repro.netsim.packet import IPv4Packet


class ReassemblyPolicy(Enum):
    """How overlapping data is resolved; all modelled OSes keep the first copy."""

    FIRST_WINS = "first-wins"
    LAST_WINS = "last-wins"


@dataclass
class _Bucket:
    """Fragments collected so far for one reassembly key."""

    fragments: list[IPv4Packet] = field(default_factory=list)
    created_at: float = 0.0


@dataclass
class DefragStats:
    """Counters exposed for tests and the attack-surface measurements."""

    fragments_received: int = 0
    packets_reassembled: int = 0
    buckets_expired: int = 0
    fragments_dropped_limit: int = 0
    spoofed_fragments_used: int = 0


class DefragmentationCache:
    """Per-host fragment reassembly cache.

    Parameters
    ----------
    timeout:
        Reassembly timeout in seconds; buckets older than this are purged.
    max_pending_per_peer:
        Maximum number of distinct IPID buckets held per (src, dst) pair;
        models the 64/100 fragment limits of patched Linux and Windows.
    policy:
        Overlap resolution policy (all real systems we model keep the first
        received copy of any byte).
    """

    def __init__(
        self,
        timeout: float = 30.0,
        max_pending_per_peer: int = 64,
        policy: ReassemblyPolicy = ReassemblyPolicy.FIRST_WINS,
    ) -> None:
        self.timeout = timeout
        self.max_pending_per_peer = max_pending_per_peer
        self.policy = policy
        self.stats = DefragStats()
        self._buckets: dict[tuple, _Bucket] = {}

    def pending_buckets(self) -> int:
        """Number of incomplete reassembly buckets currently held."""
        return len(self._buckets)

    def pending_for_peer(self, src: str, dst: str) -> int:
        """Number of buckets held for one (src, dst) pair."""
        return sum(1 for key in self._buckets if key[0] == src and key[1] == dst)

    def purge_expired(self, now: float) -> int:
        """Drop buckets older than the reassembly timeout; returns the count."""
        if not self._buckets:
            # Fast path: most receives happen with no reassembly in flight.
            return 0
        expired = [
            key
            for key, bucket in self._buckets.items()
            if now - bucket.created_at >= self.timeout
        ]
        for key in expired:
            del self._buckets[key]
        self.stats.buckets_expired += len(expired)
        return len(expired)

    def add_fragment(self, fragment: IPv4Packet, now: float) -> Optional[IPv4Packet]:
        """Insert one fragment; return the reassembled packet when complete.

        Non-fragment packets are returned unchanged.  Fragments that would
        exceed the per-peer bucket limit are dropped, which is what bounds the
        attacker's IPID spraying.
        """
        self.purge_expired(now)
        if not fragment.is_fragment:
            return fragment

        self.stats.fragments_received += 1
        key = fragment.fragment_key
        if key not in self._buckets:
            if self.pending_for_peer(fragment.src, fragment.dst) >= self.max_pending_per_peer:
                self.stats.fragments_dropped_limit += 1
                return None
            self._buckets[key] = _Bucket(created_at=now)

        bucket = self._buckets[key]
        self._insert(bucket, fragment)

        if fragments_complete(bucket.fragments):
            del self._buckets[key]
            packet = reassemble_fragments(bucket.fragments)
            self.stats.packets_reassembled += 1
            if any(f.metadata.get("spoofed") for f in bucket.fragments):
                self.stats.spoofed_fragments_used += 1
                packet.metadata["reassembled_with_spoofed_fragment"] = True
            return packet
        return None

    def _insert(self, bucket: _Bucket, fragment: IPv4Packet) -> None:
        """Insert a fragment into a bucket honouring the overlap policy."""
        same_offset = [
            index
            for index, existing in enumerate(bucket.fragments)
            if existing.fragment_offset == fragment.fragment_offset
        ]
        if same_offset:
            if self.policy is ReassemblyPolicy.LAST_WINS:
                bucket.fragments[same_offset[0]] = fragment
            # FIRST_WINS: keep the existing copy, drop the newcomer.
            return
        bucket.fragments.append(fragment)

    def planted_fragments(self, src: str, dst: str) -> list[IPv4Packet]:
        """Return spoofed fragments currently waiting for a given peer pair.

        Used by tests and by the attacker model to check whether its planted
        fragment is still alive or needs refreshing (every ``timeout``
        seconds, i.e. the "5 spoofed fragments per 150 s TTL window" bound of
        section IV-A).
        """
        waiting: list[IPv4Packet] = []
        for key, bucket in self._buckets.items():
            if key[0] == src and key[1] == dst:
                waiting.extend(
                    f for f in bucket.fragments if f.metadata.get("spoofed")
                )
        return waiting
