"""Discovering which NTP servers a victim client uses (paper section IV-B2).

The run-time attack must disrupt the victim's *existing* associations, so the
attacker first needs their addresses.  The paper lists three options, all
implemented here:

a. **Pool enumeration** — query the pool DNS zone repeatedly and union the
   results; the whole ``pool.ntp.org`` population is only 2000–3000 servers,
   few enough to attack all of them (scenario P1 with full knowledge).
b. **Reference-id leak** — if the victim also answers NTP queries (ntpd's
   default), the ``refid`` field of its responses names its current upstream
   server; the attacker learns the associations one at a time as the victim
   fails over (scenario P2).
c. **Open configuration interface** — some servers still answer mode 6/7
   configuration queries, which reveal every configured upstream at once.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.attacker import Attacker
from repro.dns.message import DNSMessage
from repro.dns.records import RRType
from repro.netsim.simulator import Simulator
from repro.ntp.errors import NTPPacketError
from repro.ntp.packet import NTPMode, NTPPacket, NTP_PORT


def discover_via_pool_enumeration(
    attacker: Attacker,
    simulator: Simulator,
    nameserver_ip: str,
    query_names: list[str],
    queries_per_name: int = 8,
    query_interval: float = 1.0,
    on_done: Optional[Callable[[set[str]], None]] = None,
) -> None:
    """Enumerate pool servers by repeatedly querying the pool nameserver.

    Mirrors the paper's measurement methodology (section VII-A): query each
    country-zone name several times and take the union of all returned
    addresses.  ``on_done`` receives the discovered address set.
    """
    discovered: set[str] = set()
    plan = [(name, i) for name in query_names for i in range(queries_per_name)]
    socket = attacker.query_host.bind(0)

    def on_datagram(payload: bytes, src_ip: str, src_port: int) -> None:
        if src_ip != nameserver_ip:
            return
        try:
            response = DNSMessage.decode(payload)
        except Exception:  # noqa: BLE001 - any malformed response is ignored
            return
        for record in response.answers:
            if record.rtype is RRType.A:
                discovered.add(str(record.data))

    socket.on_datagram = on_datagram

    def send_next(index: int) -> None:
        if index >= len(plan):
            socket.close()
            if on_done is not None:
                on_done(set(discovered))
            return
        name, _ = plan[index]
        attacker.stats.own_queries_sent += 1
        query = DNSMessage.query(name, txid=index & 0xFFFF)
        socket.sendto(query.encode(), nameserver_ip, 53)
        simulator.schedule(query_interval, lambda: send_next(index + 1))

    send_next(0)


def discover_via_refid_leak(
    attacker: Attacker,
    simulator: Simulator,
    victim_ip: str,
    on_peer: Callable[[str], None],
    probe_interval: float = 32.0,
    duration: Optional[float] = None,
) -> Callable[[], None]:
    """Poll the victim's NTP service and report its upstream server addresses.

    Every ``probe_interval`` the attacker sends a mode 3 query to the victim
    (which, run with ntpd defaults, answers it) and extracts the reference
    id.  Each *new* upstream address observed is reported through
    ``on_peer``.  Returns a function that stops the probing.
    """
    socket = attacker.query_host.bind(0)
    seen: set[str] = set()
    state = {"active": True, "started": simulator.now}

    def stop() -> None:
        if state["active"]:
            state["active"] = False
            socket.close()

    def on_datagram(payload: bytes, src_ip: str, src_port: int) -> None:
        if src_ip != victim_ip or not state["active"]:
            return
        try:
            response = NTPPacket.decode(payload)
        except NTPPacketError:
            return
        if response.mode is not NTPMode.SERVER:
            return
        peer = response.reference_id
        if peer and "." in peer and peer not in seen and not attacker.owns(peer):
            seen.add(peer)
            on_peer(peer)

    socket.on_datagram = on_datagram

    def probe() -> None:
        if not state["active"]:
            return
        if duration is not None and simulator.now - state["started"] > duration:
            stop()
            return
        attacker.stats.own_queries_sent += 1
        query = NTPPacket.client_query(simulator.now)
        socket.sendto(query.encode(), victim_ip, NTP_PORT)
        simulator.schedule(probe_interval, probe, label="refid-probe")

    probe()
    return stop


def discover_via_config_interface(
    attacker: Attacker,
    simulator: Simulator,
    server_ip: str,
    on_result: Callable[[list[str]], None],
    timeout: float = 3.0,
) -> None:
    """Query an NTP server's (mode 6/7) configuration interface.

    Servers with the interface exposed answer with their configured upstream
    servers; servers with it closed simply never respond, and ``on_result``
    is called with an empty list after the timeout.
    """
    socket = attacker.query_host.bind(0)
    state = {"done": False}

    def finish(peers: list[str]) -> None:
        if state["done"]:
            return
        state["done"] = True
        socket.close()
        on_result(peers)

    def on_datagram(payload: bytes, src_ip: str, src_port: int) -> None:
        if src_ip != server_ip:
            return
        text = payload.rstrip(b"\x00").decode("ascii", errors="replace")
        peers = []
        if text.startswith("peers="):
            peers = [p for p in text[len("peers=") :].split(",") if p]
        finish(peers)

    socket.on_datagram = on_datagram
    attacker.stats.own_queries_sent += 1
    config_query = NTPPacket(mode=NTPMode.PRIVATE, stratum=0)
    socket.sendto(config_query.encode(), server_ip, NTP_PORT)
    simulator.schedule(timeout, lambda: finish([]), label="config-probe-timeout")
