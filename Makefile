# Single-entry developer / CI targets.
#
#   make test          tier-1 test suite (the hard gate every PR must keep green)
#   make regression    fresh benchmark run diffed against the committed
#                      BENCH_netsim.json (fails on >20% throughput regression)
#   make bench         both of the above, in order — the full pre-merge gate
#   make bench-refresh re-run benchmarks and rewrite BENCH_netsim.json
#                      (refuses to overwrite the baseline on regression)
#   make bench-burst   quick burst-engine microbenchmarks only (delivery
#                      bursts + bulk rate-limiter accounting, JSON output)
#   make chaos         fault-injection / resilience property suite only
#                      (the `chaos`-marked tests, which `make test` also runs)

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test regression bench bench-refresh bench-burst chaos

test:
	$(PYTHON) -m pytest -x -q

chaos:
	$(PYTHON) -m pytest -m chaos -q

regression:
	$(PYTHON) benchmarks/check_regression.py

bench: test regression

bench-refresh:
	$(PYTHON) benchmarks/run_benchmarks.py

bench-burst:
	$(PYTHON) benchmarks/bench_micro_netsim.py
