"""Figure 5 — cumulative distribution of minimum fragment sizes.

Probes the synthetic popular-domain nameserver population with the PMTUD
methodology and rebuilds the CDF of the smallest fragment size emitted by
domains that fragment but do not deploy DNSSEC (83.2 % down to 548 bytes,
7.05 % down to 292 bytes in the paper).
"""

from __future__ import annotations

from repro.measurement.frag_scan import FragmentationScan, fragment_size_cdf
from repro.measurement.population import NameserverPopulationParameters, generate_nameservers
from repro.measurement.report import format_percentage, format_table

#: The paper's reading of Figure 5 (fractions of attackable domains).
PAPER_FIG5 = {292: 0.0705, 548: 0.832 + 0.0705}


def run_scan(size=30_000):
    return FragmentationScan(generate_nameservers(NameserverPopulationParameters(size=size))).run()


def test_fig5_fragment_size_cdf(run_once):
    report = run_once(run_scan)
    cdf = fragment_size_cdf(report)
    print()
    print(
        format_table(
            ["Min fragment size (bytes)", "Fraction of domains (CDF)"],
            [[size, format_percentage(fraction, 1)] for size, fraction in cdf],
            title="Figure 5 — CDF of fragment sizes emitted by popular domains without DNSSEC",
        )
    )
    print(f"fragmenting + unsigned domains overall: {format_percentage(report.attackable_fraction)}"
          " (paper: 7.66%)")
    values = dict(cdf)
    # Shape checks against the published curve.
    assert abs(report.attackable_fraction - 0.0766) < 0.01
    assert abs(values[292] - PAPER_FIG5[292]) < 0.03
    assert abs(values[548] - PAPER_FIG5[548]) < 0.05
    assert values[68] < values[292] < values[548] < values[1500] == 1.0
