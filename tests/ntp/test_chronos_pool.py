"""Tests for Chronos pool generation (the attack's entry point)."""

from repro.dns.records import a_record
from repro.dns.stub import StubResolver
from repro.ntp.chronos.pool_generation import ChronosPoolGenerator, PoolGenerationConfig


def make_generator(testbed, config=None):
    host = testbed.network.add_host("chronos-host", "192.0.2.90")
    stub = StubResolver(host, testbed.simulator, testbed.resolver.ip)
    return ChronosPoolGenerator(stub, testbed.simulator, config)


class TestHonestGeneration:
    def test_hourly_lookups_for_24_hours(self, small_testbed):
        generator = make_generator(small_testbed)
        generator.start()
        small_testbed.run_for(24 * 3600 + 100)
        assert generator.state.lookups_done == 24
        assert generator.state.finished

    def test_pool_grows_towards_96_servers(self, small_testbed):
        generator = make_generator(small_testbed)
        generator.start()
        small_testbed.run_for(24 * 3600 + 100)
        # Random rotation with replacement across lookups: the union is large
        # but bounded by 4 addresses per lookup and by the pool size.
        assert 20 <= len(generator.pool()) <= min(96, small_testbed.config.pool_size)
        assert generator.pool() <= set(small_testbed.pool.addresses)

    def test_lookup_schedule_is_hourly(self, small_testbed):
        config = PoolGenerationConfig(lookup_interval=3600.0, total_lookups=5)
        generator = make_generator(small_testbed, config)
        generator.start()
        small_testbed.run_for(2 * 3600 + 100)
        assert generator.state.lookups_done == 3  # t=0, 3600, 7200
        small_testbed.run_for(3 * 3600)
        assert generator.state.finished

    def test_on_finished_callback(self, small_testbed):
        collected = []
        generator = make_generator(
            small_testbed, PoolGenerationConfig(lookup_interval=60.0, total_lookups=3)
        )
        generator.on_finished = collected.append
        generator.start()
        small_testbed.run_for(300)
        assert collected and collected[0] == generator.pool()

    def test_attacker_fraction_zero_for_honest_pool(self, small_testbed):
        generator = make_generator(
            small_testbed, PoolGenerationConfig(lookup_interval=60.0, total_lookups=3)
        )
        generator.start()
        small_testbed.run_for(300)
        assert generator.attacker_fraction(small_testbed.attacker.controlled_addresses) == 0.0


class TestPoisonedGeneration:
    def _poison(self, testbed, count=89, ttl=48 * 3600):
        addresses = testbed.attacker.redirect_addresses(count)
        testbed.resolver.cache.store(
            [a_record("pool.ntp.org", address, ttl=ttl) for address in addresses],
            testbed.simulator.now,
        )

    def test_single_poisoning_dominates_pool(self, small_testbed):
        config = PoolGenerationConfig(lookup_interval=600.0, total_lookups=24)
        generator = make_generator(small_testbed, config)
        generator.start()
        small_testbed.run_for(3 * 600 + 10)  # three honest lookups happen first
        self._poison(small_testbed)
        small_testbed.run_for(24 * 600)
        fraction = generator.attacker_fraction(small_testbed.attacker.controlled_addresses)
        assert fraction > 2 / 3

    def test_long_ttl_freezes_subsequent_lookups(self, small_testbed):
        config = PoolGenerationConfig(lookup_interval=600.0, total_lookups=10)
        generator = make_generator(small_testbed, config)
        generator.start()
        small_testbed.run_for(2 * 600 + 10)
        self._poison(small_testbed)
        small_testbed.run_for(10 * 600)
        # After the poisoning lands, no new (honest) addresses enter the pool.
        new_after_poison = sum(generator.state.per_lookup_counts[4:])
        assert new_after_poison == 0

    def test_ttl_check_mitigation_rejects_poisoned_response(self, small_testbed):
        config = PoolGenerationConfig(
            lookup_interval=600.0, total_lookups=6, max_accepted_ttl=300
        )
        generator = make_generator(small_testbed, config)
        generator.start()
        small_testbed.run_for(600 + 10)
        self._poison(small_testbed, ttl=48 * 3600)
        small_testbed.run_for(6 * 600)
        assert generator.attacker_fraction(small_testbed.attacker.controlled_addresses) == 0.0
        assert generator.state.rejected_responses > 0

    def test_address_cap_mitigation_limits_damage(self, small_testbed):
        config = PoolGenerationConfig(
            lookup_interval=600.0, total_lookups=24, max_addresses_per_response=4
        )
        generator = make_generator(small_testbed, config)
        generator.start()
        small_testbed.run_for(5 * 600 + 10)
        self._poison(small_testbed)
        small_testbed.run_for(24 * 600)
        fraction = generator.attacker_fraction(small_testbed.attacker.controlled_addresses)
        assert fraction < 0.5
