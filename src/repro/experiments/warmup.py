"""Per-worker cache warm-up for sweep processes.

A fresh worker process pays a warm-up tax on its first scenario: importing
the scenario modules (testbed, clients, attacks), filling the DNS label and
name intern tables, the address word-sum memo the UDP checksum fast path
reads, and the NTP codec's precomputed constants.  For large grids run
through a process pool that tax used to be paid *per task*; the runner now
submits chunks and installs :func:`warm_worker_caches` as the pool
initializer, so each worker pays it exactly once and every scenario in its
chunks starts against warmed caches.

The function is idempotent and safe to call from the serial path too.
Warming only ever *pre-populates* bounded caches with values the standard
testbed would populate anyway — it cannot change simulation results, which
are a pure function of each run's seed.
"""

from __future__ import annotations

#: DNS names every standard-testbed scenario interns within its first
#: resolution round.
_COMMON_NAMES = (
    "pool.ntp.org",
    "ns1.pool.ntp.org",
)

_WARMED = False


def warm_worker_caches() -> None:
    """Pre-import scenario modules and pre-fill the bounded wire-layer memos.

    Called once per worker process (pool initializer) and at the top of
    every chunk as a cheap idempotent guard.
    """
    global _WARMED
    if _WARMED:
        return
    _WARMED = True

    # The import graph is the dominant cold-start cost: pull in everything a
    # standard-testbed scenario touches before the first task is timed.
    import repro.experiments.scenarios  # noqa: F401
    import repro.core.probability  # noqa: F401
    import repro.core.run_time  # noqa: F401
    import repro.ntp.clients  # noqa: F401
    import repro.testbed as testbed

    from repro.dns.names import intern_name
    from repro.netsim.addresses import address_range
    from repro.netsim.udp import _address_word_sum
    from repro.ntp.packet import NTPPacket

    for name in _COMMON_NAMES:
        intern_name(name)

    # Address word sums for the standard testbed cast: nameserver, resolver,
    # victim block, the synthetic pool, and the attacker's spoofing pool
    # (addresses taken from the AttackerResources defaults, not duplicated).
    from repro.core.attacker import AttackerResources

    attacker_defaults = AttackerResources()
    for ip in (testbed.NAMESERVER_IP, testbed.RESOLVER_IP, testbed.VICTIM_BASE_IP):
        _address_word_sum(ip)
    for ip in address_range(testbed.POOL_BASE_IP, 64):
        _address_word_sum(ip)
    for ip in address_range(
        attacker_defaults.address_pool_start, attacker_defaults.address_pool_size
    ):
        _address_word_sum(ip)
    _address_word_sum(attacker_defaults.query_address)

    # Touch the NTP codec constants (client-query prefix, refid memos).
    NTPPacket.client_query_wire(0.0)
