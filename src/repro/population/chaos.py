"""Fleet-scale chaos campaigns: correlated faults, phased regimes, resume.

The paper's attacks succeed or fail with the *network conditions* the
victims experience.  A :class:`ChaosPlan` describes those conditions the
way :class:`~repro.population.spec.PopulationSpec` describes the fleet —
declaratively, frozen, canonically serialisable — in three layers:

* **correlation groups** — named client clusters (AS-like failure
  domains) assigned by a named RNG stream, whose links share every
  outage;
* **phased regimes** — a timeline of named phases, each mapping groups to
  fault regimes; the compiler turns them into per-link
  :class:`~repro.netsim.faults.FaultSchedule` swap sequences (applied and
  retired via :meth:`~repro.netsim.network.Network.swap_link_faults`);
* **a campaign horizon** — total simulated duration plus checkpoint
  cadence.

:func:`compile_chaos` is pure: ``(plan, size, seed)`` maps to per-client
group labels and per-client schedules, and an empty (or all-clean) plan
compiles to **no** schedules at all — the fleet run is then bit-identical
to the same spec without chaos (pinned by
``tests/population/test_chaos_fleet.py``).

Campaigns execute as **prefix re-simulations**: checkpoint ``k`` is one
pure ``population_chaos`` run spec simulating ``[0, t_k]`` from scratch
with every phase swap scheduled up front.  Each checkpoint is therefore
an independent, retryable, bit-reproducible unit, and
:func:`run_chaos_campaign` simply drives the list through
:meth:`~repro.experiments.runner.ExperimentRunner.run_stored` — a SIGINT
or ``kill -9`` mid-phase loses at most the in-flight checkpoint, and
:func:`resume_chaos_campaign` replays only the unfinished tail, crossing
store segment rolls untouched.  The final checkpoint *is* the campaign's
end state; intermediate ones are the degradation timeline
(:func:`repro.measurement.report.degradation_report`).

``python -m repro.population.chaos`` runs the smoke campaign
(``make chaos-campaign``): a small fleet, two phases, one partitioned
group, end-to-end through the run store.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
from dataclasses import dataclass, field, fields, replace
from functools import lru_cache
from typing import Any, Mapping, Optional, Union

from repro.netsim.faults import FaultSchedule
from repro.population.generate import _draw_mix
from repro.population.spec import (
    BUILTIN_FAULT_REGIMES,
    WINDOWED_FAULT_KINDS,
    FaultRegimeSpec,
    PopulationSpec,
    SpecError,
)

#: The named generation stream assigning clients to correlation groups
#: (see :func:`repro.population.generate._stream` for the seeding scheme).
GROUP_STREAM = "chaos:group"


class ChaosError(SpecError):
    """A chaos plan is internally inconsistent or unloadable."""


@dataclass(frozen=True)
class CorrelationGroup:
    """One named failure domain; clients are assigned by weighted draw."""

    name: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ChaosError("correlation group name must not be empty")
        if self.weight <= 0:
            raise ChaosError(
                f"group {self.name!r} weight must be > 0, got {self.weight}"
            )


@dataclass(frozen=True)
class ChaosPhase:
    """One regime window: for ``duration`` seconds, groups map to regimes.

    ``regimes`` is ``((group, regime), ...)``; groups not listed run clean
    for the phase.  Phase windows tile the campaign timeline back to back
    starting at ``t = 0`` on the simulator clock.
    """

    name: str
    duration: float
    regimes: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ChaosError("chaos phase name must not be empty")
        if self.duration <= 0:
            raise ChaosError(
                f"phase {self.name!r} duration must be > 0, got {self.duration}"
            )
        pairs = tuple(
            (str(group), str(regime)) for group, regime in self.regimes
        )
        seen = set()
        for group, _regime in pairs:
            if group in seen:
                raise ChaosError(
                    f"phase {self.name!r} maps group {group!r} twice"
                )
            seen.add(group)
        object.__setattr__(self, "regimes", pairs)


@dataclass(frozen=True)
class CampaignHorizon:
    """How long the campaign simulates and how often it checkpoints.

    ``duration == 0`` means "the sum of the phase durations"; a positive
    value must cover every phase (the tail past the last phase runs
    healed).  ``checkpoint_every == 0`` checkpoints at phase boundaries
    only; a positive cadence adds checkpoints at every multiple.
    """

    duration: float = 0.0
    checkpoint_every: float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0 or self.checkpoint_every < 0:
            raise ChaosError(
                "horizon duration and checkpoint_every must be >= 0, got "
                f"{self.duration} / {self.checkpoint_every}"
            )


@dataclass(frozen=True)
class ChaosPlan:
    """The full declarative description of one chaos campaign.

    Frozen and canonically serialisable (:meth:`to_json`, :meth:`digest`)
    exactly like :class:`~repro.population.spec.PopulationSpec`, so plans
    ride inside run-spec parameters and key caches.  ``regimes`` reuses
    :class:`~repro.population.spec.FaultRegimeSpec` — inside a phase the
    windowed kinds interpret ``start`` as an offset into the phase and
    ``duration == 0`` as "the rest of the phase".
    """

    groups: tuple[CorrelationGroup, ...] = ()
    regimes: tuple[FaultRegimeSpec, ...] = ()
    phases: tuple[ChaosPhase, ...] = ()
    horizon: CampaignHorizon = field(default_factory=CampaignHorizon)

    def __post_init__(self) -> None:
        object.__setattr__(self, "groups", tuple(self.groups))
        object.__setattr__(self, "regimes", tuple(self.regimes))
        object.__setattr__(self, "phases", tuple(self.phases))
        for collection, what in ((self.groups, "group"), (self.regimes, "regime")):
            names = [entry.name for entry in collection]
            if len(names) != len(set(names)):
                raise ChaosError(f"chaos plan declares a {what} name twice")
        phase_names = [phase.name for phase in self.phases]
        if len(phase_names) != len(set(phase_names)):
            raise ChaosError("chaos plan declares a phase name twice")
        group_names = {group.name for group in self.groups}
        regime_names = set(self.regime_table())
        for phase in self.phases:
            for group, regime in phase.regimes:
                if group not in group_names:
                    raise ChaosError(
                        f"phase {phase.name!r} references undeclared group "
                        f"{group!r}"
                    )
                if regime not in regime_names:
                    raise ChaosError(
                        f"phase {phase.name!r} references undeclared regime "
                        f"{regime!r}"
                    )
        phase_total = sum(phase.duration for phase in self.phases)
        if self.horizon.duration and self.horizon.duration < phase_total:
            raise ChaosError(
                f"horizon duration {self.horizon.duration} is shorter than "
                f"the {phase_total} seconds of declared phases"
            )

    # --------------------------------------------------------------- lookups
    def regime_table(self) -> dict[str, FaultRegimeSpec]:
        """Built-in fault regimes overlaid with the plan's own declarations."""
        table = dict(BUILTIN_FAULT_REGIMES)
        table.update({regime.name: regime for regime in self.regimes})
        return table

    def total_duration(self) -> float:
        """The campaign horizon (0 = no timeline: run the natural length)."""
        return self.horizon.duration or sum(
            phase.duration for phase in self.phases
        )

    def phase_starts(self) -> tuple[float, ...]:
        """Absolute start time of each declared phase."""
        starts = []
        cursor = 0.0
        for phase in self.phases:
            starts.append(cursor)
            cursor += phase.duration
        return tuple(starts)

    def phase_at(self, time: float) -> str:
        """Name of the phase covering ``time`` ("" past the last phase)."""
        cursor = 0.0
        for phase in self.phases:
            if cursor <= time < cursor + phase.duration:
                return phase.name
            cursor += phase.duration
        return ""

    def checkpoints(self) -> tuple[float, ...]:
        """Strictly-increasing checkpoint times ending at the horizon."""
        total = self.total_duration()
        if total <= 0:
            return ()
        times = {total}
        cursor = 0.0
        for phase in self.phases:
            cursor += phase.duration
            if cursor < total:
                times.add(cursor)
        cadence = self.horizon.checkpoint_every
        if cadence > 0:
            tick = cadence
            while tick < total:
                times.add(tick)
                tick += cadence
        return tuple(sorted(times))

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> dict[str, Any]:
        return {
            "groups": [[group.name, group.weight] for group in self.groups],
            "regimes": [
                {
                    "name": r.name,
                    "kind": r.kind,
                    "probability": r.probability,
                    "magnitude": r.magnitude,
                    "start": r.start,
                    "duration": r.duration,
                }
                for r in self.regimes
            ],
            "phases": [
                {
                    "name": phase.name,
                    "duration": phase.duration,
                    "regimes": [[g, r] for g, r in phase.regimes],
                }
                for phase in self.phases
            ],
            "horizon": {
                "duration": self.horizon.duration,
                "checkpoint_every": self.horizon.checkpoint_every,
            },
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ChaosPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(document) - known
        if unknown:
            raise ChaosError(f"unknown chaos plan fields: {sorted(unknown)}")
        kwargs: dict[str, Any] = {}
        if "groups" in document:
            try:
                kwargs["groups"] = tuple(
                    CorrelationGroup(str(name), float(weight))
                    for name, weight in document["groups"]
                )
            except (TypeError, ValueError) as exc:
                raise ChaosError(
                    f"chaos groups must be (name, weight) pairs: "
                    f"{document['groups']!r}"
                ) from exc
        if "regimes" in document:
            kwargs["regimes"] = tuple(
                FaultRegimeSpec(**dict(r)) for r in document["regimes"]
            )
        if "phases" in document:
            kwargs["phases"] = tuple(
                ChaosPhase(
                    name=str(p["name"]),
                    duration=float(p["duration"]),
                    regimes=tuple(
                        (g, r) for g, r in p.get("regimes", ())
                    ),
                )
                for p in document["phases"]
            )
        if "horizon" in document:
            kwargs["horizon"] = CampaignHorizon(**dict(document["horizon"]))
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — the form carried in run specs."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosError(f"chaos plan is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise ChaosError("chaos plan JSON must be an object")
        return cls.from_dict(document)

    def digest(self) -> str:
        """Content hash of the canonical serialisation (stable across runs)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]


def load_chaos_plan(path: Union[str, os.PathLike]) -> ChaosPlan:
    """Load a plan from a ``.toml`` or JSON file.

    TOML documents may nest everything under a ``[chaos]`` table (the
    conventional layout) or declare the fields at top level.
    """
    text_path = str(path)
    if text_path.endswith(".toml"):
        import tomllib

        with open(text_path, "rb") as handle:
            document = tomllib.load(handle)
        if "chaos" in document and isinstance(document["chaos"], dict):
            document = document["chaos"]
        return ChaosPlan.from_dict(document)
    with open(text_path, "r", encoding="utf-8") as handle:
        return ChaosPlan.from_json(handle.read())


@lru_cache(maxsize=64)
def plan_from_json(text: str) -> ChaosPlan:
    """Parse (and cache) a canonical plan-JSON string (worker hot path)."""
    return ChaosPlan.from_json(text)


# ------------------------------------------------------------------ compiler
@dataclass(frozen=True)
class ChaosCompilation:
    """The pure compile of ``(plan, size, seed)``: labels + schedules.

    ``group_of[i]`` is client ``i``'s correlation group ("" when the plan
    declares no groups); ``schedules`` maps client index to the
    :class:`~repro.netsim.faults.FaultSchedule` of regime swaps its links
    experience — clients whose every phase collapses to "no change" are
    simply absent, so an inert plan compiles to an empty mapping.
    """

    group_of: tuple[str, ...]
    schedules: Mapping[int, FaultSchedule]
    checkpoints: tuple[float, ...]
    total_duration: float

    @property
    def is_inert(self) -> bool:
        return not self.schedules


def assign_groups(plan: ChaosPlan, size: int, seed: int) -> tuple[str, ...]:
    """Deterministic client→group labels via the ``chaos:group`` stream.

    Mirrors fleet generation: its own named stream (group assignment never
    shifts the fleet's draws), and a single-group plan assigns without
    consuming randomness at all.
    """
    if not plan.groups:
        return ("",) * size
    mix = {group.name: group.weight for group in plan.groups}
    return tuple(_draw_mix(mix, size, seed, GROUP_STREAM))


def _phase_components(
    regime: FaultRegimeSpec, phase_start: float, phase_duration: float
) -> tuple:
    """Realise one regime inside one phase window.

    Windowed kinds re-anchor onto the absolute clock: ``start`` is the
    offset into the phase, ``duration == 0`` means the rest of the phase.
    Probabilistic kinds pass through unchanged (they live until the next
    swap retires them).
    """
    from repro.population.fleet import _fault_components

    if regime.kind in WINDOWED_FAULT_KINDS:
        offset = min(regime.start, phase_duration)
        duration = regime.duration or max(phase_duration - offset, 0.0)
        regime = replace(
            regime, start=phase_start + offset, duration=duration
        )
    return _fault_components(regime)


def _group_schedule(plan: ChaosPlan, group: str) -> Optional[FaultSchedule]:
    """The swap timeline one correlation group experiences (or ``None``).

    Consecutive identical states collapse away, so a group that runs clean
    through every phase gets **no** schedule — nothing is attached, nothing
    is scheduled, and the run stays bit-identical to a chaos-free fleet.
    """
    table = plan.regime_table()
    entries: list[tuple[float, tuple]] = []
    current: tuple = ()
    cursor = 0.0
    for phase in plan.phases:
        regime_name = dict(phase.regimes).get(group)
        if regime_name is None:
            components: tuple = ()
        else:
            components = _phase_components(
                table[regime_name], cursor, phase.duration
            )
        if components != current:
            entries.append((cursor, components))
            current = components
        cursor += phase.duration
    if current != ():
        # Heal at the end of the last phase (the horizon tail runs clean).
        entries.append((cursor, ()))
    if not entries:
        return None
    return FaultSchedule(entries)


def compile_chaos(plan: ChaosPlan, size: int, seed: int) -> ChaosCompilation:
    """Pure compile: per-client group labels and per-client fault schedules."""
    group_of = assign_groups(plan, size, seed)
    by_group = {
        group.name: _group_schedule(plan, group.name) for group in plan.groups
    }
    schedules = {
        index: by_group[label]
        for index, label in enumerate(group_of)
        if label and by_group.get(label) is not None
    }
    return ChaosCompilation(
        group_of=group_of,
        schedules=schedules,
        checkpoints=plan.checkpoints(),
        total_duration=plan.total_duration(),
    )


# ------------------------------------------------------------------ campaign
def run_chaos_checkpoint(
    spec: PopulationSpec,
    plan: ChaosPlan,
    seed: int,
    until: float = 0.0,
    detail_limit: int = 0,
) -> dict[str, Any]:
    """One pure prefix re-simulation of the campaign: ``[0, until]``.

    ``until <= 0`` runs the fleet's natural length (bit-identical to a
    chaos-free :func:`~repro.population.fleet.run_fleet` when the plan is
    inert).  The result document carries the fleet payload plus the
    chaos surface: ``groups`` (per-group success + fault counters),
    ``fault_stats``, ``plan_digest``, ``until`` and ``phase``.
    """
    from repro.population.fleet import run_fleet

    compilation = compile_chaos(plan, spec.size, seed)
    document = run_fleet(
        spec,
        seed=seed,
        detail_limit=detail_limit,
        run_until=until if until > 0 else None,
        link_schedules=compilation.schedules or None,
        group_of=compilation.group_of if plan.groups else None,
    )
    document["plan_digest"] = plan.digest()
    document["until"] = float(until)
    document["phase"] = plan.phase_at(max(until - 1e-9, 0.0)) if until > 0 else ""
    return document


def campaign_specs(spec: PopulationSpec, plan: ChaosPlan, seed: int) -> list:
    """The campaign's checkpoint run specs, in checkpoint order.

    Checkpoint ``k`` simulates ``[0, t_k]`` from scratch — each spec is an
    independent pure unit, which is exactly what makes the campaign
    resumable at checkpoint granularity through the store.
    """
    from repro.experiments.runner import RunSpec

    spec_json = spec.to_json()
    plan_json = plan.to_json()
    checkpoints = plan.checkpoints() or (0.0,)
    return [
        RunSpec.make(
            "population_chaos",
            spec_json=spec_json,
            plan_json=plan_json,
            seed=seed,
            until=float(time),
            checkpoint=index,
        )
        for index, time in enumerate(checkpoints)
    ]


def _campaign_summary(
    name: str,
    sweep_id: Optional[str],
    spec: PopulationSpec,
    plan: ChaosPlan,
    seed: int,
    outcomes: list,
) -> dict[str, Any]:
    checkpoints = []
    for outcome in outcomes:
        params = outcome.spec.kwargs()
        entry: dict[str, Any] = {
            "checkpoint": params.get("checkpoint"),
            "until": params.get("until"),
        }
        if outcome.ok and isinstance(outcome.result, dict):
            result = outcome.result
            entry["phase"] = result.get("phase")
            entry["successes"] = result.get("successes")
            entry["success_rate"] = result.get("success_rate")
            entry["size"] = result.get("size")
            entry["fault_stats"] = result.get("fault_stats")
            entry["groups"] = result.get("groups")
            entry["aggregate"] = result.get("aggregate")
        else:
            entry["error"] = outcome.error
        checkpoints.append(entry)
    return {
        "kind": "chaos-campaign-summary",
        "name": name,
        "sweep_id": sweep_id,
        "seed": seed,
        "spec_digest": spec.digest(),
        "plan_digest": plan.digest(),
        "plan": plan.to_dict(),
        "checkpoints": checkpoints,
    }


def _finalise_campaign(
    store: Any,
    sweep_id: Optional[str],
    campaign: dict[str, Any],
) -> dict[str, Any]:
    """Write the per-checkpoint aggregates + summary, then stamp complete."""
    if sweep_id is None:
        return campaign
    record = dict(campaign)
    record["checkpoints"] = [
        {key: value for key, value in entry.items() if key != "aggregate"}
        for entry in campaign["checkpoints"]
    ]
    writer = store.open_sweep(sweep_id)
    try:
        for entry in campaign["checkpoints"]:
            aggregate = entry.get("aggregate")
            if aggregate is not None:
                cell = {
                    key: entry.get(key)
                    for key in ("checkpoint", "until", "phase")
                }
                writer.append_aggregate(
                    cell, aggregate, kind="chaos-checkpoint"
                )
        writer.append_record(record)
    finally:
        writer.close()
    store.finish_sweep(sweep_id, "complete")
    return campaign


def run_chaos_campaign(
    store: Any,
    name: str,
    spec: PopulationSpec,
    plan: ChaosPlan,
    seed: int = 0,
    runner: Optional[Any] = None,
) -> dict[str, Any]:
    """Drive a full campaign through the durable store, checkpoint by
    checkpoint.

    The sweep manifest freezes the checkpoint spec list before the first
    run; every finished checkpoint lands in an fsynced segment; the sweep
    stays ``running`` until the per-phase aggregates and the
    ``chaos-campaign-summary`` record are appended — so any crash leaves a
    resumable sweep (:func:`resume_chaos_campaign`), never a ``complete``
    one with a missing summary.
    """
    from repro.experiments.runner import ExperimentRunner

    runner = runner or ExperimentRunner(max_workers=1)
    specs = campaign_specs(spec, plan, seed)
    outcomes = runner.run_stored(
        store,
        name,
        specs,
        seed=seed,
        metadata={
            "kind": "chaos-campaign",
            "spec_digest": spec.digest(),
            "plan_digest": plan.digest(),
            "plan": plan.to_dict(),
            "checkpoints": [s.kwargs()["until"] for s in specs],
        },
        finish=False,
    )
    campaign = _campaign_summary(
        name, runner.last_sweep_id, spec, plan, seed, outcomes
    )
    return _finalise_campaign(store, runner.last_sweep_id, campaign)


def resume_chaos_campaign(
    store: Any, sweep_id: str, runner: Optional[Any] = None
) -> dict[str, Any]:
    """Continue a killed campaign from nothing but its store directory.

    Spec and plan are rebuilt from the manifest's frozen run specs, the
    finished checkpoints load back (validated), only the unfinished tail
    re-executes, and the summary is (re)written — the result is identical
    to an uninterrupted :func:`run_chaos_campaign`.
    """
    from repro.experiments.runner import ExperimentRunner

    runner = runner or ExperimentRunner(max_workers=1)
    specs = store.specs(sweep_id)
    if not specs:
        raise ChaosError(f"sweep {sweep_id!r} has no campaign specs to resume")
    params = specs[0].kwargs()
    spec = PopulationSpec.from_json(params["spec_json"])
    plan = plan_from_json(params["plan_json"])
    seed = int(params.get("seed", 0))
    name = store.manifest(sweep_id).get("name", sweep_id)
    outcomes = runner.resume_stored(store, sweep_id, specs, finish=False)
    campaign = _campaign_summary(name, sweep_id, spec, plan, seed, outcomes)
    return _finalise_campaign(store, sweep_id, campaign)


def load_campaign(store: Any, sweep_id: str) -> Optional[dict[str, Any]]:
    """The last ``chaos-campaign-summary`` record of a sweep (or ``None``)."""
    records = store.kind_records(sweep_id, "chaos-campaign-summary")
    return records[-1] if records else None


# ----------------------------------------------------------------- smoke CLI
def smoke_plan() -> ChaosPlan:
    """The miniature campaign ``make chaos-campaign`` drives end-to-end.

    Two AS-like groups; a calm phase, then a storm phase that blackholes
    ``as-east`` while ``as-west`` rides through; a horizon tail past the
    storm so the degradation report shows calm → storm → healed.
    """
    return ChaosPlan(
        groups=(
            CorrelationGroup("as-east", 0.5),
            CorrelationGroup("as-west", 0.5),
        ),
        regimes=(FaultRegimeSpec("blackout", kind="partition"),),
        phases=(
            ChaosPhase("calm", 900.0),
            ChaosPhase("storm", 600.0, regimes=(("as-east", "blackout"),)),
        ),
        horizon=CampaignHorizon(duration=1800.0),
    )


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.population.chaos`` — the smoke campaign."""
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.store import RunStore
    from repro.measurement.report import degradation_report
    from repro.population.landscape import smoke_spec

    parser = argparse.ArgumentParser(
        prog="repro.population.chaos",
        description="Run a small chaos campaign end-to-end (smoke test).",
    )
    parser.add_argument("--store", default=".chaos_campaign_store")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--resume", default=None, metavar="SWEEP_ID",
        help="continue a killed campaign instead of starting a new one",
    )
    args = parser.parse_args(argv)

    store = RunStore(args.store)
    runner = ExperimentRunner(max_workers=args.workers, tenants_per_worker=3)
    if args.resume:
        campaign = resume_chaos_campaign(store, args.resume, runner=runner)
    else:
        campaign = run_chaos_campaign(
            store,
            "chaos-smoke",
            smoke_spec(),
            smoke_plan(),
            seed=args.seed,
            runner=runner,
        )
    print(degradation_report(campaign))
    print(f"\nstored as sweep {campaign['sweep_id']} in {args.store}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = [
    "CampaignHorizon",
    "ChaosCompilation",
    "ChaosError",
    "ChaosPhase",
    "ChaosPlan",
    "CorrelationGroup",
    "GROUP_STREAM",
    "assign_groups",
    "campaign_specs",
    "compile_chaos",
    "load_campaign",
    "load_chaos_plan",
    "plan_from_json",
    "resume_chaos_campaign",
    "run_chaos_campaign",
    "run_chaos_checkpoint",
    "smoke_plan",
]
