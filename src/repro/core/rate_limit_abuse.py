"""Removing NTP associations by abusing server-side rate limiting (section IV-B2).

NTP servers identify clients by source IP address only, so an off-path
attacker can impersonate the victim client towards any server simply by
spoofing the source address of mode 3 queries.  Sending such queries faster
than the server's rate-limit budget pushes the *victim* into the limited
state: the server stops answering the victim's own (slow, legitimate) polls,
the victim's reachability register for that server drains, and the client
eventually declares the association dead and goes back to DNS for a
replacement — straight into the poisoned cache.

Compared to a denial-of-service attack on the server this needs a trickle of
packets (one spoofed query every couple of seconds per server) and harms
nobody else: the server keeps serving all other clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.attacker import Attacker
from repro.netsim.packet import IPProtocol, IPv4Packet
from repro.netsim.simulator import Simulator
from repro.netsim.udp import UDPDatagram, encode_udp
from repro.ntp.packet import NTPPacket, NTP_PORT


@dataclass
class RemovalCampaign:
    """State of the spoofing campaign against one (victim, server) pair."""

    server_ip: str
    victim_ip: str
    started_at: float
    queries_sent: int = 0
    active: bool = True


@dataclass
class RemoverStats:
    """Aggregate counters for the association-removal activity."""

    campaigns_started: int = 0
    campaigns_stopped: int = 0
    spoofed_queries_sent: int = 0


class AssociationRemover:
    """Keeps chosen NTP servers rate-limiting the victim client.

    Parameters
    ----------
    query_interval:
        Interval between spoofed queries per server.  It must stay below the
        server's average-interval budget (8 s for the reference
        implementation) so the victim remains limited; the default of 2 s
        keeps the overall attack volume at a fraction of a packet per second
        per server.
    """

    def __init__(
        self,
        attacker: Attacker,
        simulator: Simulator,
        victim_ip: str,
        query_interval: float = 2.0,
    ) -> None:
        self.attacker = attacker
        self.simulator = simulator
        self.victim_ip = victim_ip
        self.query_interval = query_interval
        self.stats = RemoverStats()
        self.campaigns: dict[str, RemovalCampaign] = {}

    # -------------------------------------------------------------- control
    def target(self, server_ip: str) -> RemovalCampaign:
        """Start (or return the existing) campaign against one server."""
        if server_ip in self.campaigns and self.campaigns[server_ip].active:
            return self.campaigns[server_ip]
        campaign = RemovalCampaign(
            server_ip=server_ip,
            victim_ip=self.victim_ip,
            started_at=self.simulator.now,
        )
        self.campaigns[server_ip] = campaign
        self.stats.campaigns_started += 1
        self._send_spoofed_query(campaign)
        return campaign

    def target_many(self, server_ips: list[str]) -> list[RemovalCampaign]:
        """Start campaigns against a whole list of servers (scenario P1)."""
        return [self.target(ip) for ip in server_ips]

    def stop(self, server_ip: Optional[str] = None) -> None:
        """Stop one campaign, or all campaigns."""
        targets = [server_ip] if server_ip else list(self.campaigns)
        for ip in targets:
            campaign = self.campaigns.get(ip)
            if campaign is not None and campaign.active:
                campaign.active = False
                self.stats.campaigns_stopped += 1

    def active_targets(self) -> list[str]:
        """Servers currently being kept in the rate-limited state."""
        return [ip for ip, campaign in self.campaigns.items() if campaign.active]

    # ------------------------------------------------------------- spoofing
    def _send_spoofed_query(self, campaign: RemovalCampaign) -> None:
        if not campaign.active:
            return
        datagram = UDPDatagram(
            src_port=NTP_PORT,
            dst_port=NTP_PORT,
            payload=NTPPacket.client_query_wire(self.simulator.now),
        )
        payload = encode_udp(self.victim_ip, campaign.server_ip, datagram)
        packet = IPv4Packet.udp(
            self.victim_ip,
            campaign.server_ip,
            payload,
            campaign.queries_sent & 0xFFFF,
        )
        campaign.queries_sent += 1
        self.stats.spoofed_queries_sent += 1
        self.attacker.stats.spoofed_ntp_queries_sent += 1
        self.attacker.inject(packet)
        # Fire-and-forget rescheduling: this loop sends tens of thousands of
        # queries per campaign and never cancels one, so it uses the
        # anonymous fast path instead of a fresh closure + f-string label.
        self.simulator.post(self.query_interval, self._send_spoofed_query, campaign)
