"""Tests for UDP encoding and checksum verification."""

import pytest

from repro.netsim.errors import PacketError
from repro.netsim.udp import UDPDatagram, decode_udp, encode_udp, udp_checksum


class TestDatagram:
    def test_length_field(self):
        datagram = UDPDatagram(src_port=1000, dst_port=53, payload=b"abcd")
        assert datagram.length == 12

    def test_rejects_bad_ports(self):
        with pytest.raises(PacketError):
            UDPDatagram(src_port=70000, dst_port=53, payload=b"")
        with pytest.raises(PacketError):
            UDPDatagram(src_port=53, dst_port=-1, payload=b"")


class TestChecksum:
    def test_checksum_depends_on_addresses(self):
        datagram = UDPDatagram(src_port=1000, dst_port=53, payload=b"query")
        a = udp_checksum("10.0.0.1", "10.0.0.2", datagram)
        b = udp_checksum("10.0.0.1", "10.0.0.3", datagram)
        assert a != b

    def test_checksum_depends_on_payload(self):
        a = udp_checksum("10.0.0.1", "10.0.0.2", UDPDatagram(1, 2, b"aaaa"))
        b = udp_checksum("10.0.0.1", "10.0.0.2", UDPDatagram(1, 2, b"aaab"))
        assert a != b

    def test_zero_checksum_transmitted_as_ffff(self):
        # Find a payload whose computed checksum is zero is hard; instead
        # verify the rule is applied by checking no datagram yields 0.
        for payload in (b"", b"a", b"ab", b"abc"):
            value = udp_checksum("10.0.0.1", "10.0.0.2", UDPDatagram(1, 2, payload))
            assert value != 0


class TestEncodeDecode:
    def test_round_trip(self):
        datagram = UDPDatagram(src_port=5353, dst_port=53, payload=b"hello dns")
        wire = encode_udp("192.0.2.1", "192.0.2.2", datagram)
        decoded = decode_udp("192.0.2.1", "192.0.2.2", wire)
        assert decoded.src_port == 5353
        assert decoded.dst_port == 53
        assert decoded.payload == b"hello dns"

    def test_truncated_rejected(self):
        with pytest.raises(PacketError):
            decode_udp("1.1.1.1", "2.2.2.2", b"\x00\x01")

    def test_length_mismatch_rejected(self):
        wire = encode_udp("1.1.1.1", "2.2.2.2", UDPDatagram(1, 2, b"abcdef"))
        with pytest.raises(PacketError):
            decode_udp("1.1.1.1", "2.2.2.2", wire + b"extra")

    def test_corrupted_payload_fails_checksum(self):
        wire = bytearray(encode_udp("1.1.1.1", "2.2.2.2", UDPDatagram(1, 2, b"abcdef")))
        wire[-1] ^= 0xFF
        with pytest.raises(PacketError):
            decode_udp("1.1.1.1", "2.2.2.2", bytes(wire))

    def test_corrupted_payload_accepted_without_verification(self):
        wire = bytearray(encode_udp("1.1.1.1", "2.2.2.2", UDPDatagram(1, 2, b"abcdef")))
        wire[-1] ^= 0xFF
        decoded = decode_udp("1.1.1.1", "2.2.2.2", bytes(wire), verify=False)
        assert decoded.payload != b"abcdef"

    def test_spoofed_source_fails_checksum(self):
        """A datagram re-attributed to a different source fails verification,
        unless the attacker fixes the checksum — the reason section III-3
        exists."""
        wire = encode_udp("10.0.0.1", "10.0.0.2", UDPDatagram(1, 2, b"payload"))
        with pytest.raises(PacketError):
            decode_udp("6.6.6.6", "10.0.0.2", wire)
