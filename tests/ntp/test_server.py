"""Tests for the NTP server (serving, rate limiting, config interface)."""

import pytest

from repro.netsim.network import Network
from repro.netsim.packet import IPProtocol, IPv4Packet
from repro.netsim.simulator import Simulator
from repro.netsim.udp import UDPDatagram, encode_udp
from repro.ntp.clock import SystemClock
from repro.ntp.packet import NTPMode, NTPPacket, NTP_PORT
from repro.ntp.server import NTPServer, NTPServerConfig


def build_env(config=None, clock=None):
    sim = Simulator(seed=8)
    net = Network(sim)
    server_host = net.add_host("server", "203.0.113.1")
    client_host = net.add_host("client", "192.0.2.100")
    server = NTPServer(server_host, sim, clock=clock, config=config)
    return sim, net, server, client_host


def query_server(sim, client_host, server_ip="203.0.113.1", count=1, interval=1.0):
    responses = []
    socket = client_host.bind(0)
    socket.on_datagram = lambda payload, ip, port: responses.append(NTPPacket.decode(payload))

    def send(remaining):
        socket.sendto(NTPPacket.client_query(sim.now).encode(), server_ip, NTP_PORT)
        if remaining > 1:
            sim.schedule(interval, lambda: send(remaining - 1))

    send(count)
    sim.run()
    socket.close()
    return responses


class TestServing:
    def test_responds_with_mode4_and_own_time(self):
        clock = SystemClock(offset=2.5)
        sim, net, server, client = build_env(clock=clock)
        responses = query_server(sim, client)
        assert len(responses) == 1
        assert responses[0].mode is NTPMode.SERVER
        assert responses[0].transmit_timestamp.to_unix() == pytest.approx(sim.now + 2.5, abs=0.1)

    def test_attacker_server_serves_shifted_time(self):
        sim = Simulator(seed=9)
        net = Network(sim)
        host = net.add_host("evil", "66.6.6.6")
        server = NTPServer.attacker_server(host, sim, time_shift=-500.0)
        client = net.add_host("client", "192.0.2.100")
        responses = query_server(sim, client, server_ip="66.6.6.6")
        assert responses[0].transmit_timestamp.to_unix() == pytest.approx(sim.now - 500.0, abs=0.1)

    def test_refid_carries_upstream_address(self):
        config = NTPServerConfig(upstream_server="198.51.100.200")
        sim, net, server, client = build_env(config=config)
        responses = query_server(sim, client)
        assert responses[0].reference_id == "198.51.100.200"

    def test_non_client_modes_ignored(self):
        sim, net, server, client = build_env()
        socket = client.bind(0)
        broadcast = NTPPacket(mode=NTPMode.BROADCAST, stratum=2, reference_id="")
        socket.sendto(broadcast.encode(), "203.0.113.1", NTP_PORT)
        sim.run()
        assert server.stats.responses_sent == 0

    def test_malformed_packet_ignored(self):
        sim, net, server, client = build_env()
        client.bind(0).sendto(b"tiny", "203.0.113.1", NTP_PORT)
        sim.run()
        assert server.stats.responses_sent == 0


class TestRateLimiting:
    def test_fast_client_gets_kod_then_silence(self):
        config = NTPServerConfig(rate_limiting=True, send_kod=True)
        sim, net, server, client = build_env(config=config)
        responses = query_server(sim, client, count=20, interval=1.0)
        kods = [r for r in responses if r.is_kiss_of_death]
        assert len(kods) == 1
        assert len(responses) < 20
        assert server.stats.queries_dropped > 0

    def test_rate_limiting_disabled_by_default(self):
        sim, net, server, client = build_env()
        responses = query_server(sim, client, count=20, interval=1.0)
        assert len(responses) == 20

    def test_spoofed_queries_limit_the_victim(self):
        """Off-path association removal: spoofed queries with the victim's
        source address make the server stop answering the victim."""
        config = NTPServerConfig(rate_limiting=True)
        sim, net, server, client = build_env(config=config)
        victim_ip = "192.0.2.100"
        # Attacker injects spoofed queries claiming to come from the victim.
        for index in range(30):
            query = NTPPacket.client_query(float(index))
            datagram = UDPDatagram(src_port=NTP_PORT, dst_port=NTP_PORT, payload=query.encode())
            packet = IPv4Packet(
                src=victim_ip,
                dst="203.0.113.1",
                protocol=IPProtocol.UDP,
                payload=encode_udp(victim_ip, "203.0.113.1", datagram),
                ipid=index,
            )
            sim.schedule(index * 2.0, lambda p=packet: net.inject(p))
        sim.run()
        assert server.is_rate_limiting(victim_ip)

    def test_other_clients_unaffected_by_victim_limiting(self):
        config = NTPServerConfig(rate_limiting=True)
        sim, net, server, client = build_env(config=config)
        other = net.add_host("other", "192.0.2.200")
        query_server(sim, client, count=20, interval=1.0)  # client now limited
        responses = query_server(sim, other, count=1)
        assert len(responses) == 1


class TestConfigInterface:
    def test_closed_by_default(self):
        sim, net, server, client = build_env()
        socket = client.bind(0)
        got = []
        socket.on_datagram = lambda payload, ip, port: got.append(payload)
        socket.sendto(NTPPacket(mode=NTPMode.PRIVATE, stratum=0).encode(), "203.0.113.1", NTP_PORT)
        sim.run()
        assert got == []

    def test_open_interface_leaks_upstream(self):
        config = NTPServerConfig(open_config_interface=True, upstream_server="198.51.100.200")
        sim, net, server, client = build_env(config=config)
        socket = client.bind(0)
        got = []
        socket.on_datagram = lambda payload, ip, port: got.append(payload)
        socket.sendto(NTPPacket(mode=NTPMode.PRIVATE, stratum=0).encode(), "203.0.113.1", NTP_PORT)
        sim.run()
        assert got and b"198.51.100.200" in got[0]
        assert server.stats.config_queries_answered == 1
