"""Fleet simulation and its engine integration (scenarios, tenant packs)."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner, RunSpec, _execute_chunk
from repro.experiments.scenarios import get_scenario, get_tenant_pack
from repro.population.fleet import run_fleet, spec_from_json
from repro.population.spec import ChurnSpec, PopulationSpec


def _small_spec(**overrides) -> PopulationSpec:
    kwargs = dict(
        size=6,
        client_mix={"ntpd": 0.5, "chrony": 0.3, "systemd-timesyncd": 0.2},
        poll_jitter=0.1,
        pool_size=8,
        warmup_seconds=120.0,
        max_duration_hours=0.05,
    )
    kwargs.update(overrides)
    return PopulationSpec(**kwargs)


class TestRunFleet:
    def test_deterministic_for_fixed_spec_and_seed(self):
        spec = _small_spec(churn=ChurnSpec(late_join_fraction=0.3))
        assert run_fleet(spec, seed=3) == run_fleet(spec, seed=3)

    def test_document_shape_with_details(self):
        spec = _small_spec()
        document = run_fleet(spec, seed=1)
        assert document["size"] == 6
        assert document["spec_digest"] == spec.digest()
        assert sum(document["type_counts"].values()) == 6
        assert len(document["clients"]) == 6
        aggregate = document["aggregate"]
        assert aggregate["total"] == 6
        assert aggregate["successes"] == document["successes"]
        assert document["events_processed"] > 0
        assert document["packets_transmitted"] > 0

    def test_details_dropped_beyond_limit(self):
        document = run_fleet(_small_spec(), seed=1, detail_limit=3)
        assert "clients" not in document
        assert document["aggregate"]["total"] == 6

    def test_heterogeneous_link_and_fault_mixes_run(self):
        spec = _small_spec(
            link_mix={"default": 0.5, "mobile": 0.5},
            fault_mix={"clean": 0.5, "bursty": 0.25, "jittery": 0.25},
        )
        document = run_fleet(spec, seed=2)
        assert document["aggregate"]["total"] == 6

    def test_spec_from_json_memoises(self):
        text = _small_spec().to_json()
        assert spec_from_json(text) is spec_from_json(text)
        assert spec_from_json(text) == PopulationSpec.from_json(text)


class TestEngineIntegration:
    def test_population_fleet_scenario_matches_direct_call(self):
        spec = _small_spec()
        scenario = get_scenario("population_fleet")
        assert scenario(spec_json=spec.to_json(), seed=4) == run_fleet(spec, seed=4)

    def test_tenant_pack_matches_per_spec_execution(self):
        # The multi-tenant worker path is an optimisation, never a
        # semantic change: packed outcomes must equal per-spec outcomes.
        spec_json = _small_spec().to_json()
        specs = tuple(
            RunSpec.make("population_fleet", spec_json=spec_json, seed=seed)
            for seed in range(3)
        )
        packed = _execute_chunk(specs, pack_tenants=3)
        plain = _execute_chunk(specs)
        assert [outcome.result for outcome in packed] == [
            outcome.result for outcome in plain
        ]
        assert all(outcome.ok for outcome in packed)
        assert all(outcome.wall_time > 0 for outcome in packed)

    def test_tenant_pack_registered_for_population_scenarios(self):
        assert get_tenant_pack("population_fleet") is not None
        assert get_tenant_pack("population_landscape") is not None
        assert get_tenant_pack("no_such_scenario") is None

    def test_pool_run_with_tenants_per_worker(self):
        spec_json = _small_spec(size=3).to_json()
        specs = [
            RunSpec.make("population_fleet", spec_json=spec_json, seed=seed)
            for seed in range(4)
        ]
        serial = ExperimentRunner(max_workers=1).run(specs)
        packed_runner = ExperimentRunner(max_workers=2, tenants_per_worker=2)
        packed = packed_runner.run(specs)
        assert packed_runner.last_execution_mode.startswith("processes")
        assert [outcome.result for outcome in packed] == [
            outcome.result for outcome in serial
        ]

    def test_stage_stats_disable_packing(self):
        runner = ExperimentRunner(
            max_workers=2, tenants_per_worker=4, collect_stage_stats=True
        )
        assert runner._pack_limit() == 0
        assert ExperimentRunner(max_workers=2)._pack_limit() == 0
        assert (
            ExperimentRunner(max_workers=2, tenants_per_worker=4)._pack_limit() == 4
        )

    def test_tenants_per_worker_validation(self):
        with pytest.raises(ValueError):
            ExperimentRunner(tenants_per_worker=0)
