"""Tests for the DNS defragmentation-cache poisoning attack (section III)."""

import pytest

from repro.core.fragment_attack import DNSFragmentPoisoner, PoisoningPlan
from repro.dns.message import DNSMessage
from repro.dns.records import RRType
from repro.netsim.host import OSProfile
from repro.testbed import NAMESERVER_IP, TestbedConfig, build_testbed


def make_poisoner(testbed, **plan_overrides):
    plan_defaults = dict(
        resolver_ip=testbed.resolver.ip,
        nameserver_ip=NAMESERVER_IP,
        qname="pool.ntp.org",
        malicious_addresses=testbed.attacker.redirect_addresses(4),
        target_mtu=68,
        max_duration=400.0,
    )
    plan_defaults.update(plan_overrides)
    plan = PoisoningPlan(**plan_defaults)
    outcomes = []
    poisoner = DNSFragmentPoisoner(
        testbed.attacker,
        testbed.simulator,
        plan,
        success_check=lambda: testbed.resolver_poisoned("pool.ntp.org"),
        on_finished=outcomes.append,
    )
    return poisoner, outcomes


class TestCraftingSteps:
    def test_learns_response_template(self, predictable_testbed):
        poisoner, _ = make_poisoner(predictable_testbed)
        poisoner.start()
        predictable_testbed.run_for(10)
        assert poisoner.template_payload is not None
        decoded = DNSMessage.decode(poisoner.template_payload)
        assert decoded.question.name == "pool.ntp.org"

    def test_forces_fragmentation_at_nameserver(self, predictable_testbed):
        poisoner, _ = make_poisoner(predictable_testbed)
        poisoner.start()
        predictable_testbed.run_for(10)
        ns_host = predictable_testbed.network.host(NAMESERVER_IP)
        assert ns_host.path_mtu(predictable_testbed.resolver.ip) == 68
        # Responses to the attacker itself are not fragmented.
        assert ns_host.path_mtu(predictable_testbed.attacker.query_host.ip) == 1500

    def test_spoofed_payload_rewrites_addresses_and_matches_checksum(self, predictable_testbed):
        from repro.netsim.checksum import ones_complement_sum
        from repro.netsim.udp import UDP_HEADER_LEN

        poisoner, _ = make_poisoner(predictable_testbed)
        poisoner.start()
        predictable_testbed.run_for(10)
        crafted = poisoner.build_spoofed_payload()
        assert crafted is not None
        payload, offset_units = crafted
        boundary = poisoner.first_fragment_payload_length()
        assert offset_units == boundary // 8
        original_f2 = (b"\x00" * UDP_HEADER_LEN + poisoner.template_payload)[boundary:]
        assert ones_complement_sum(payload) == ones_complement_sum(original_f2)
        assert payload != original_f2

    def test_no_payload_when_response_does_not_fragment(self, predictable_testbed):
        poisoner, _ = make_poisoner(predictable_testbed, target_mtu=1400)
        poisoner.start()
        predictable_testbed.run_for(10)
        assert poisoner.build_spoofed_payload() is None

    def test_planted_fragments_enter_resolver_defrag_cache(self, predictable_testbed):
        poisoner, _ = make_poisoner(predictable_testbed)
        poisoner.start()
        predictable_testbed.run_for(20)
        resolver_host = predictable_testbed.network.host(predictable_testbed.resolver.ip)
        planted = resolver_host.defrag.planted_fragments(
            NAMESERVER_IP, predictable_testbed.resolver.ip
        )
        assert len(planted) > 0


class TestEndToEndPoisoning:
    def trigger_query(self, testbed, qname="pool.ntp.org"):
        """Have a bystander client behind the resolver ask for the pool name."""
        from repro.dns.stub import StubResolver

        host = testbed.network.add_host(f"bystander-{qname}", "192.0.2.77")
        results = []
        StubResolver(host, testbed.simulator, testbed.resolver.ip).resolve(
            qname, results.append
        )
        return results

    def test_poisoning_succeeds_with_predictable_tail(self, predictable_testbed):
        poisoner, outcomes = make_poisoner(predictable_testbed)
        poisoner.start()
        predictable_testbed.run_for(10)
        results = self.trigger_query(predictable_testbed)
        predictable_testbed.run_for(40)
        assert predictable_testbed.resolver_poisoned("pool.ntp.org")
        assert outcomes and outcomes[0].success
        attacker_addresses = predictable_testbed.attacker.controlled_addresses
        assert any(address in attacker_addresses for address in results[0].addresses)

    def test_bystander_receives_attacker_addresses(self, predictable_testbed):
        poisoner, _ = make_poisoner(predictable_testbed)
        poisoner.start()
        predictable_testbed.run_for(10)
        self.trigger_query(predictable_testbed)
        predictable_testbed.run_for(5)
        cached = predictable_testbed.resolver.cached_addresses("pool.ntp.org")
        assert set(cached) <= predictable_testbed.attacker.controlled_addresses

    def test_attack_volume_is_low(self, predictable_testbed):
        """Section IV-A: a handful of spoofed fragments per refresh round."""
        poisoner, _ = make_poisoner(predictable_testbed, ipid_candidates=8)
        poisoner.start()
        predictable_testbed.run_for(100)
        assert poisoner.refreshes <= 5
        assert poisoner.fragments_sent <= 8 * poisoner.refreshes

    def test_poisoning_fails_without_challenge_values_if_not_fragmented(self, predictable_testbed):
        """With a large MTU nothing fragments, so the off-path attacker has
        no way in (it never learns port/TXID)."""
        poisoner, outcomes = make_poisoner(predictable_testbed, target_mtu=1400, max_duration=120.0)
        poisoner.start()
        predictable_testbed.run_for(10)
        self.trigger_query(predictable_testbed)
        predictable_testbed.run_for(120)
        assert not predictable_testbed.resolver_poisoned("pool.ntp.org")

    def test_random_rotation_defeats_checksum_fix(self):
        """Ablation: with an unpredictable response tail the planted fragment
        fails the UDP checksum and the resolver stays clean."""
        testbed = build_testbed(TestbedConfig(pool_size=24, seed=21, pool_rotation="random"))
        poisoner, _ = make_poisoner(testbed)
        poisoner.start()
        testbed.run_for(10)
        self.trigger_query(testbed)
        testbed.run_for(10)
        resolver_host = testbed.network.host(testbed.resolver.ip)
        assert not testbed.resolver_poisoned("pool.ntp.org")
        assert resolver_host.stats.udp_checksum_failures >= 1

    def test_fragment_filtering_resolver_immune(self):
        """Resolvers that drop fragments (about 2/3 of the population) are
        not poisonable by this technique."""
        testbed = build_testbed(
            TestbedConfig(pool_size=24, seed=22, pool_rotation="fixed", resolver_drops_fragments=True)
        )
        poisoner, _ = make_poisoner(testbed)
        poisoner.start()
        testbed.run_for(10)
        self.trigger_query(testbed)
        testbed.run_for(60)
        assert not testbed.resolver_poisoned("pool.ntp.org")

    def test_trigger_query_via_open_resolver(self, predictable_testbed):
        poisoner, _ = make_poisoner(predictable_testbed)
        poisoner.start()
        predictable_testbed.run_for(10)
        poisoner.trigger_query_via_open_resolver()
        predictable_testbed.run_for(10)
        assert predictable_testbed.resolver_poisoned("pool.ntp.org")

    def test_verify_via_open_resolver(self, predictable_testbed):
        poisoner, _ = make_poisoner(predictable_testbed)
        poisoner.start()
        predictable_testbed.run_for(10)
        poisoner.trigger_query_via_open_resolver()
        predictable_testbed.run_for(10)
        verdicts = []
        poisoner.verify_via_open_resolver(verdicts.append)
        predictable_testbed.run_for(10)
        assert verdicts == [True]

    def test_poisoned_ttl_override(self, predictable_testbed):
        """With a query name long enough that every answer record (including
        its TTL field) lands in the second fragment, the attacker can also
        extend the TTL of the poisoned records — the knob the Chronos attack
        turns.  (For the short ``pool.ntp.org`` name the first record's TTL
        stays in the first fragment and caps the cached rrset TTL at 150 s.)
        """
        qname = "2.android.pool.ntp.org"
        poisoner, _ = make_poisoner(predictable_testbed, qname=qname, poisoned_ttl=90000)
        poisoner.start()
        predictable_testbed.run_for(10)
        self.trigger_query(predictable_testbed, qname=qname)
        predictable_testbed.run_for(5)
        assert predictable_testbed.resolver_poisoned(qname)
        ttl = predictable_testbed.resolver.cache.remaining_ttl(
            qname, RRType.A, predictable_testbed.simulator.now
        )
        assert ttl is not None and ttl > 150
