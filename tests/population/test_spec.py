"""PopulationSpec: validation, serialisation round-trips, default shares."""

from __future__ import annotations

import json

import pytest

from repro.measurement.population import (
    PAPER_CLIENT_MARKET_SHARES,
    default_client_mix,
)
from repro.ntp.clients import CLIENT_REGISTRY
from repro.population.spec import (
    BUILTIN_FAULT_REGIMES,
    BUILTIN_LINK_PROFILES,
    ChurnSpec,
    FaultRegimeSpec,
    LinkProfileSpec,
    NoiseLayer,
    PopulationSpec,
    SpecError,
    load_spec,
)


class TestValidation:
    def test_defaults_build(self):
        spec = PopulationSpec()
        assert spec.size == 1
        assert spec.churn.static

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size": 0},
            {"pool_size": 0},
            {"pool_rate_limit_fraction": 1.5},
            {"attack": "P3"},
            {"poll_jitter": 1.0},
            {"max_duration_hours": 0.0},
            {"client_mix": {}},
            {"client_mix": {"ntpd": -1.0}},
            {"client_mix": {"ntpd": 0.0}},
            {"client_mix": {"no-such-client": 1.0}},
            {"link_mix": {"no-such-profile": 1.0}},
            {"fault_mix": {"no-such-regime": 1.0}},
        ],
    )
    def test_invalid_specs_raise(self, kwargs):
        with pytest.raises(SpecError):
            PopulationSpec(**kwargs)

    def test_duplicate_mix_entries_raise(self):
        with pytest.raises(SpecError, match="twice"):
            PopulationSpec(client_mix=[("ntpd", 0.5), ("ntpd", 0.5)])

    def test_churn_fraction_bounds(self):
        with pytest.raises(SpecError):
            ChurnSpec(late_join_fraction=1.5)
        with pytest.raises(SpecError):
            ChurnSpec(leave_fraction=-0.1)

    def test_noise_layer_bounds(self):
        with pytest.raises(SpecError):
            NoiseLayer(attribute="no-such-attribute")
        with pytest.raises(SpecError):
            NoiseLayer(attribute="poll_interval", kind="cauchy")
        with pytest.raises(SpecError):
            NoiseLayer(attribute="poll_interval", scale=-1.0)

    def test_declared_profiles_extend_builtins(self):
        spec = PopulationSpec(
            link_mix={"default": 0.5, "dialup": 0.5},
            link_profiles=(LinkProfileSpec("dialup", latency=0.2),),
            fault_mix={"clean": 0.5, "storm": 0.5},
            fault_regimes=(
                FaultRegimeSpec("storm", kind="bursty_loss", probability=0.2),
            ),
        )
        table = spec.link_profile_table()
        assert set(BUILTIN_LINK_PROFILES) <= set(table)
        assert table["dialup"].latency == 0.2
        assert "storm" in spec.fault_regime_table()
        assert set(BUILTIN_FAULT_REGIMES) <= set(spec.fault_regime_table())


class TestSerialisation:
    def _rich_spec(self) -> PopulationSpec:
        return PopulationSpec(
            size=40,
            client_mix={"ntpd": 0.6, "chrony": 0.4},
            poll_jitter=0.2,
            churn=ChurnSpec(late_join_fraction=0.3, leave_fraction=0.1),
            link_mix={"default": 0.7, "mobile": 0.3},
            fault_mix={"clean": 0.8, "bursty": 0.2},
            noise_layers=(
                NoiseLayer("poll_interval", kind="lognormal", scale=0.1),
                NoiseLayer("join_time", kind="normal", scale=30.0),
            ),
            pool_size=16,
            pool_rate_limit_fraction=0.5,
            warmup_seconds=300.0,
            max_duration_hours=0.5,
        )

    def test_json_round_trip_is_identity(self):
        spec = self._rich_spec()
        assert PopulationSpec.from_json(spec.to_json()) == spec

    def test_canonical_json_and_digest_are_stable(self):
        spec = self._rich_spec()
        assert spec.to_json() == PopulationSpec.from_json(spec.to_json()).to_json()
        assert spec.digest() == spec.digest()
        assert spec.digest() != PopulationSpec().digest()

    def test_unknown_fields_rejected(self):
        with pytest.raises(SpecError, match="unknown population spec fields"):
            PopulationSpec.from_dict({"size": 3, "colour": "mauve"})

    def test_invalid_json_raises_spec_error(self):
        with pytest.raises(SpecError):
            PopulationSpec.from_json("{nope")
        with pytest.raises(SpecError):
            PopulationSpec.from_json("[1, 2]")

    def test_load_spec_json(self, tmp_path):
        spec = self._rich_spec()
        path = tmp_path / "fleet.json"
        path.write_text(spec.to_json())
        assert load_spec(path) == spec

    def test_load_spec_toml_with_population_table(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text(
            "\n".join(
                [
                    "[population]",
                    "size = 12",
                    "poll_jitter = 0.1",
                    'client_mix = [["ntpd", 0.75], ["chrony", 0.25]]',
                    "[population.churn]",
                    "late_join_fraction = 0.25",
                ]
            )
        )
        spec = load_spec(path)
        assert spec.size == 12
        assert spec.client_mix == (("ntpd", 0.75), ("chrony", 0.25))
        assert spec.churn.late_join_fraction == 0.25

    def test_load_spec_toml_top_level(self, tmp_path):
        path = tmp_path / "flat.toml"
        path.write_text("size = 3\n")
        assert load_spec(path).size == 3


class TestDefaultShares:
    """The paper marginals are the single source of default client shares."""

    def test_paper_shares_match_client_class_attributes(self):
        # Every registry class carrying a pool_usage_share must agree with
        # the documented marginals, and vice versa — one source of truth.
        by_class = {
            name: cls.pool_usage_share
            for name, cls in CLIENT_REGISTRY.items()
            if cls.pool_usage_share is not None
        }
        assert by_class == PAPER_CLIENT_MARKET_SHARES

    def test_default_mix_is_renormalised_marginals(self):
        mix = default_client_mix()
        assert mix.keys() == PAPER_CLIENT_MARKET_SHARES.keys()
        assert sum(mix.values()) == pytest.approx(1.0)
        total = sum(PAPER_CLIENT_MARKET_SHARES.values())
        for name, share in PAPER_CLIENT_MARKET_SHARES.items():
            assert mix[name] == pytest.approx(share / total)

    def test_default_spec_uses_paper_mix(self):
        spec = PopulationSpec()
        assert dict(spec.client_mix) == pytest.approx(default_client_mix())
        effective = spec.effective_client_mix()
        assert sum(effective.values()) == pytest.approx(1.0)
