# Single-entry developer / CI targets.
#
#   make test          tier-1 test suite (the hard gate every PR must keep green)
#   make regression    fresh benchmark run diffed against the committed
#                      BENCH_netsim.json (fails on >20% throughput regression)
#   make bench         both of the above, in order — the full pre-merge gate
#   make bench-refresh re-run benchmarks and rewrite BENCH_netsim.json
#                      (refuses to overwrite the baseline on regression)
#   make bench-burst   quick burst-engine microbenchmarks only (delivery
#                      bursts + bulk rate-limiter accounting, JSON output)
#   make chaos         fault-injection / resilience property suite only
#                      (the `chaos`-marked tests, which `make test` also runs;
#                      includes the kill -9 crash-injection harness)
#   make regression-trend  regression gate in trend-aware mode: compares
#                      against the rolling .bench_history/ window and
#                      records the fresh sample when it passes
#   make store-fsck    validate every run store in the repo (experiment
#                      sweeps under runs/ plus the bench history) — scans
#                      segments for torn/corrupt records; STORE=dir for one
#   make population-smoke  small population landscape end-to-end: a 3×3
#                      grid of heterogeneous mini-fleets through the
#                      durable experiment engine, printed as a
#                      success-probability table
#   make chaos-campaign  small chaos campaign end-to-end: a two-phase
#                      ChaosPlan (calm, then an AS-partition storm) over a
#                      mini-fleet, checkpointed through the run store and
#                      printed as a per-phase degradation report; resume a
#                      killed campaign with
#                      `python -m repro.population.chaos --resume SWEEP_ID`

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test regression regression-trend bench bench-refresh bench-burst chaos store-fsck population-smoke chaos-campaign

test:
	$(PYTHON) -m pytest -x -q

chaos:
	$(PYTHON) -m pytest -m chaos -q

regression:
	$(PYTHON) benchmarks/check_regression.py

regression-trend:
	$(PYTHON) benchmarks/check_regression.py --history

store-fsck:
	@if [ -n "$(STORE)" ]; then \
		$(PYTHON) -m repro.experiments.store fsck "$(STORE)"; \
	else \
		$(PYTHON) -m repro.experiments.store fsck runs --allow-missing && \
		$(PYTHON) -m repro.experiments.store fsck .bench_history --allow-missing; \
	fi

bench: test regression

bench-refresh:
	$(PYTHON) benchmarks/run_benchmarks.py

bench-burst:
	$(PYTHON) benchmarks/bench_micro_netsim.py

population-smoke:
	$(PYTHON) -m repro.population.landscape

chaos-campaign:
	$(PYTHON) -m repro.population.chaos
