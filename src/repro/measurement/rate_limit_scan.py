"""Rate-limiting scan of pool NTP servers (paper section VII-A).

The scan runs against *real simulated NTP servers* (built by
:func:`repro.ntp.pool.build_pool_population`), reproducing the paper's
methodology exactly:

* query every server 64 times, once per second, from the scanner host,
* flag a server as sending Kiss-o'-Death if any response is a KoD packet,
* flag a server as rate limiting if it answered at least 8 more of the
  queries in the first half of the test than in the second half (this
  absorbs packet loss and servers that still answer a trickle while
  limiting).

The paper found 33 % KoD senders and 38 % rate limiters among 2432 servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.netsim.host import Host
from repro.netsim.simulator import Simulator
from repro.ntp.errors import NTPPacketError
from repro.ntp.packet import NTPMode, NTPPacket, NTP_PORT


@dataclass
class ServerScanResult:
    """Per-server outcome of the scan."""

    server_ip: str
    responses_first_half: int = 0
    responses_second_half: int = 0
    kod_received: bool = False

    @property
    def rate_limiting(self) -> bool:
        """The paper's classifier: >= 8 fewer responses in the second half."""
        return self.responses_first_half - self.responses_second_half > 8

    @property
    def total_responses(self) -> int:
        """Total responses received across the whole probe."""
        return self.responses_first_half + self.responses_second_half


@dataclass
class RateLimitScanReport:
    """Aggregate result of the scan (section VII-A)."""

    servers_scanned: int
    kod_servers: int
    rate_limiting_servers: int
    results: list[ServerScanResult] = field(default_factory=list)

    @property
    def kod_fraction(self) -> float:
        """Fraction of servers that sent a Kiss-o'-Death packet."""
        return self.kod_servers / self.servers_scanned if self.servers_scanned else 0.0

    @property
    def rate_limiting_fraction(self) -> float:
        """Fraction of servers classified as rate limiting."""
        return (
            self.rate_limiting_servers / self.servers_scanned
            if self.servers_scanned
            else 0.0
        )


class RateLimitScan:
    """Probes a list of NTP servers for rate limiting from a scanner host."""

    def __init__(
        self,
        scanner_host: Host,
        simulator: Simulator,
        server_ips: list[str],
        queries_per_server: int = 64,
        query_interval: float = 1.0,
        concurrent_servers: int = 64,
    ) -> None:
        self.host = scanner_host
        self.simulator = simulator
        self.server_ips = list(server_ips)
        self.queries_per_server = queries_per_server
        self.query_interval = query_interval
        #: How many servers are probed in parallel; probing all of
        #: pool.ntp.org strictly sequentially would take 2432 * 64 seconds.
        self.concurrent_servers = concurrent_servers
        self.results: dict[str, ServerScanResult] = {}
        self._on_done: Optional[Callable[[RateLimitScanReport], None]] = None
        self._in_flight = 0
        self._next_index = 0

    # ------------------------------------------------------------------ run
    def start(self, on_done: Optional[Callable[[RateLimitScanReport], None]] = None) -> None:
        """Begin scanning; ``on_done`` fires when every server finished."""
        self._on_done = on_done
        for _ in range(min(self.concurrent_servers, len(self.server_ips))):
            self._start_next_server()

    def run(self) -> RateLimitScanReport:
        """Convenience wrapper: start, run the simulator to completion, report."""
        done: list[RateLimitScanReport] = []
        self.start(on_done=done.append)
        # Worst case: every server takes the full probe duration.
        batches = (len(self.server_ips) + self.concurrent_servers - 1) // max(
            1, self.concurrent_servers
        )
        self.simulator.run_for(
            batches * (self.queries_per_server * self.query_interval + 10.0) + 10.0
        )
        return done[0] if done else self.report()

    def _start_next_server(self) -> None:
        if self._next_index >= len(self.server_ips):
            return
        server_ip = self.server_ips[self._next_index]
        self._next_index += 1
        self._in_flight += 1
        self._probe_server(server_ip)

    def _probe_server(self, server_ip: str) -> None:
        result = ServerScanResult(server_ip=server_ip)
        self.results[server_ip] = result
        socket = self.host.bind(0)
        half = self.queries_per_server // 2
        sent = {"count": 0}

        def on_datagram(payload: bytes, src_ip: str, src_port: int) -> None:
            if src_ip != server_ip:
                return
            try:
                packet = NTPPacket.decode(payload)
            except NTPPacketError:
                return
            if packet.mode is not NTPMode.SERVER:
                return
            if packet.is_kiss_of_death:
                result.kod_received = True
                return
            if sent["count"] <= half:
                result.responses_first_half += 1
            else:
                result.responses_second_half += 1

        socket.on_datagram = on_datagram

        def send_next() -> None:
            if sent["count"] >= self.queries_per_server:
                self.simulator.schedule(2.0, finish)
                return
            sent["count"] += 1
            query = NTPPacket.client_query(self.simulator.now)
            socket.sendto(query.encode(), server_ip, NTP_PORT)
            self.simulator.schedule(self.query_interval, send_next)

        def finish() -> None:
            socket.close()
            self._in_flight -= 1
            self._start_next_server()
            if self._in_flight == 0 and self._next_index >= len(self.server_ips):
                if self._on_done is not None:
                    self._on_done(self.report())

        send_next()

    # --------------------------------------------------------------- report
    def report(self) -> RateLimitScanReport:
        """Aggregate the per-server results."""
        results = list(self.results.values())
        return RateLimitScanReport(
            servers_scanned=len(results),
            kod_servers=sum(1 for r in results if r.kod_received),
            rate_limiting_servers=sum(1 for r in results if r.rate_limiting),
            results=results,
        )
