"""Stub resolver: the client-side DNS API used by NTP clients and scanners.

A stub resolver sends a single recursive query to a configured recursive
resolver and waits for the answer.  NTP clients call
:meth:`StubResolver.resolve` whenever they need to (re-)discover NTP servers;
measurement tooling uses the same class with ``rd=False`` for cache snooping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dns.errors import MessageError
from repro.dns.message import DNSMessage, ResponseCode
from repro.dns.records import RRType
from repro.netsim.host import Host
from repro.netsim.simulator import Simulator


@dataclass
class ResolutionResult:
    """The outcome of one stub resolution."""

    name: str
    rtype: RRType
    rcode: ResponseCode
    addresses: list[str] = field(default_factory=list)
    records: list = field(default_factory=list)
    latency: float = 0.0
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        """True when the resolution produced at least one usable answer."""
        return not self.timed_out and self.rcode is ResponseCode.NOERROR and bool(self.records)

    def ttls(self) -> list[int]:
        """TTLs of the answer records (used by the snooping studies)."""
        return [record.ttl for record in self.records]


#: Callback invoked with the result of a resolution.
ResolutionCallback = Callable[[ResolutionResult], None]


class StubResolver:
    """Sends recursive queries from a host to its configured resolver."""

    def __init__(
        self,
        host: Host,
        simulator: Simulator,
        resolver_ip: str,
        timeout: float = 5.0,
    ) -> None:
        self.host = host
        self.simulator = simulator
        self.resolver_ip = resolver_ip
        self.timeout = timeout
        self._rng = simulator.spawn_rng()
        self.queries_sent = 0
        self.responses_received = 0
        self.timeouts = 0

    def resolve(
        self,
        name: str,
        callback: ResolutionCallback,
        rtype: RRType = RRType.A,
        rd: bool = True,
        resolver_ip: Optional[str] = None,
    ) -> None:
        """Resolve ``name`` and invoke ``callback`` with the result.

        ``rd=False`` sends a non-recursive query, which well-behaved
        resolvers answer from cache only — the primitive behind the
        cache-snooping measurements of Table IV.
        """
        target = resolver_ip or self.resolver_ip
        txid = int(self._rng.integers(0, 1 << 16))
        query = DNSMessage.query(name, rtype, txid=txid, rd=rd)
        socket = self.host.bind(0)
        started = self.simulator.now
        state = {"done": False}

        def finish(result: ResolutionResult) -> None:
            if state["done"]:
                return
            state["done"] = True
            socket.close()
            callback(result)

        def on_response(payload: bytes, src_ip: str, src_port: int) -> None:
            if src_ip != target or src_port != 53:
                return
            try:
                response = DNSMessage.decode_cached(payload)
            except MessageError:
                return
            if response.txid != txid or not response.is_response:
                return
            self.responses_received += 1
            answers = [r for r in response.answers if r.rtype is rtype]
            finish(
                ResolutionResult(
                    name=name,
                    rtype=rtype,
                    rcode=response.flags.rcode,
                    addresses=[str(r.data) for r in answers],
                    records=list(response.answers),
                    latency=self.simulator.now - started,
                )
            )

        def on_timeout() -> None:
            if state["done"]:
                return
            self.timeouts += 1
            finish(
                ResolutionResult(
                    name=name,
                    rtype=rtype,
                    rcode=ResponseCode.SERVFAIL,
                    latency=self.simulator.now - started,
                    timed_out=True,
                )
            )

        socket.on_datagram = on_response
        self.queries_sent += 1
        socket.sendto(query.encode(), target, 53)
        self.simulator.schedule(self.timeout, on_timeout, label=f"stub-timeout {name}")
