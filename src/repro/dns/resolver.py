"""Caching recursive resolvers — the victims of the poisoning attack.

The resolver accepts client queries on UDP port 53, answers from its cache
when possible, and otherwise forwards the question to the authoritative
nameserver responsible for the zone (looked up in a static delegation map —
a simplification of full iterative resolution that preserves everything the
attack cares about: one upstream UDP exchange per cache miss, protected only
by source-port and TXID randomisation plus a bailiwick check).

Resolver behaviours measured in the paper and modelled here:

* **RD=0 handling** — answering non-recursive queries from cache only, the
  hook used by the cache-snooping study (Table IV / Figure 6),
* **fragmented-response acceptance** — a property of the host profile
  (``drops_fragments``); about a third of resolvers accept fragments,
* **DNSSEC validation** — performed by 19–29 % of clients' resolvers; the
  resolver validates only zones for which it has a trust anchor and the
  zone is actually signed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dns.cache import DNSCache
from repro.dns.dnssec import ZoneSigningKey, validate_rrset
from repro.dns.errors import MessageError
from repro.dns.message import DNSMessage, ResponseCode
from repro.dns.names import name_in_zone, normalize_name, parent_zones
from repro.dns.records import ResourceRecord, RRType
from repro.netsim.host import Host
from repro.netsim.simulator import Simulator
from repro.netsim.sockets import UDPSocket


@dataclass
class ResolverConfig:
    """Tunable resolver behaviour."""

    validate_dnssec: bool = False
    query_timeout: float = 2.0
    max_retries: int = 2
    max_cache_ttl: int = 7 * 24 * 3600
    honor_rd_zero: bool = True
    open_resolver: bool = True
    minimum_ttl: int = 0


@dataclass
class ResolverStats:
    """Counters used throughout the tests and measurement studies."""

    client_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    upstream_queries: int = 0
    upstream_timeouts: int = 0
    servfail_sent: int = 0
    validation_failures: int = 0
    rejected_mismatched_responses: int = 0
    rd_zero_queries: int = 0


@dataclass
class _PendingQuery:
    """State for one in-flight upstream query."""

    client_ip: str
    client_port: int
    client_query: DNSMessage
    upstream_ip: str
    question_name: str
    question_type: RRType
    txid: int
    socket: UDPSocket
    retries_left: int
    timeout_event: object = None
    local_callback: Optional[Callable[[DNSMessage], None]] = None


class RecursiveResolver:
    """A caching recursive resolver bound to port 53 of a simulated host."""

    def __init__(
        self,
        host: Host,
        simulator: Simulator,
        zone_map: dict[str, str],
        config: Optional[ResolverConfig] = None,
        trust_anchors: Optional[dict[str, ZoneSigningKey]] = None,
    ) -> None:
        self.host = host
        self.simulator = simulator
        #: Maps zone origin -> authoritative nameserver IP.
        self.zone_map = {normalize_name(zone): ip for zone, ip in zone_map.items()}
        self.config = config or ResolverConfig()
        self.trust_anchors = dict(trust_anchors or {})
        self.cache = DNSCache(max_ttl=self.config.max_cache_ttl)
        self.stats = ResolverStats()
        self._rng = simulator.spawn_rng()
        self._pending: list[_PendingQuery] = []
        self.server_socket = host.bind(53, self._on_client_query)

    @property
    def ip(self) -> str:
        """The address clients send their queries to."""
        return self.host.ip

    # --------------------------------------------------------------- client
    def _on_client_query(self, payload: bytes, src_ip: str, src_port: int) -> None:
        try:
            query = DNSMessage.decode_cached(payload)
        except MessageError:
            return
        if query.is_response or not query.questions:
            return
        self.stats.client_queries += 1
        question = query.question
        now = self.simulator.now

        if not query.flags.rd:
            self.stats.rd_zero_queries += 1
            if self.config.honor_rd_zero:
                self._answer_from_cache_only(query, src_ip, src_port)
                return

        cached = self.cache.lookup(question.name, question.rtype, now)
        if cached is not None:
            self.stats.cache_hits += 1
            self._send_response(query, cached, src_ip, src_port)
            return
        self.stats.cache_misses += 1
        self._query_upstream(query, src_ip, src_port)

    def _answer_from_cache_only(self, query: DNSMessage, src_ip: str, src_port: int) -> None:
        question = query.question
        cached = self.cache.lookup(question.name, question.rtype, self.simulator.now)
        if cached is not None:
            self.stats.cache_hits += 1
            self._send_response(query, cached, src_ip, src_port)
        else:
            self.stats.cache_misses += 1
            self._send_response(query, [], src_ip, src_port)

    def _send_response(
        self,
        query: DNSMessage,
        answers: list[ResourceRecord],
        src_ip: str,
        src_port: int,
        rcode: ResponseCode = ResponseCode.NOERROR,
    ) -> None:
        response = query.make_response(
            answers=answers,
            rcode=rcode,
            authoritative=False,
            recursion_available=True,
            authenticated=self._answers_validated(query, answers),
        )
        self.server_socket.sendto(response.encode(), src_ip, src_port)

    def _answers_validated(self, query: DNSMessage, answers: list[ResourceRecord]) -> bool:
        """Whether the AD bit should be set on a response to the client."""
        if not self.config.validate_dnssec or not answers:
            return False
        return self._anchor_for(query.question.name) is not None

    # ------------------------------------------------------------- upstream
    def nameserver_for(self, name: str) -> Optional[str]:
        """The authoritative nameserver IP for ``name`` per the delegation map."""
        name = normalize_name(name)
        for zone in [name] + parent_zones(name):
            if zone in self.zone_map:
                return self.zone_map[zone]
        return None

    def _anchor_for(self, name: str) -> Optional[ZoneSigningKey]:
        for zone, key in self.trust_anchors.items():
            if name_in_zone(name, zone):
                return key
        return None

    def _query_upstream(
        self,
        client_query: DNSMessage,
        client_ip: str,
        client_port: int,
        local_callback: Optional[Callable[[DNSMessage], None]] = None,
    ) -> None:
        question = client_query.question
        upstream_ip = self.nameserver_for(question.name)
        if upstream_ip is None:
            self.stats.servfail_sent += 1
            if local_callback is None:
                self._send_response(
                    client_query, [], client_ip, client_port, ResponseCode.SERVFAIL
                )
            else:
                local_callback(client_query.make_response(rcode=ResponseCode.SERVFAIL))
            return

        txid = int(self._rng.integers(0, 1 << 16))
        socket = self.host.bind(0)
        pending = _PendingQuery(
            client_ip=client_ip,
            client_port=client_port,
            client_query=client_query,
            upstream_ip=upstream_ip,
            question_name=question.name,
            question_type=question.rtype,
            txid=txid,
            socket=socket,
            retries_left=self.config.max_retries,
            local_callback=local_callback,
        )
        socket.on_datagram = lambda payload, ip, port: self._on_upstream_response(
            pending, payload, ip, port
        )
        self._pending.append(pending)
        self._send_upstream(pending)

    def _send_upstream(self, pending: _PendingQuery) -> None:
        self.stats.upstream_queries += 1
        query = DNSMessage.query(
            pending.question_name, pending.question_type, txid=pending.txid
        )
        pending.socket.sendto(query.encode(), pending.upstream_ip, 53)
        pending.timeout_event = self.simulator.schedule(
            self.config.query_timeout,
            lambda: self._on_upstream_timeout(pending),
            label=f"resolver-timeout {pending.question_name}",
        )

    def _on_upstream_timeout(self, pending: _PendingQuery) -> None:
        if pending not in self._pending:
            return
        self.stats.upstream_timeouts += 1
        if pending.retries_left > 0:
            pending.retries_left -= 1
            self._send_upstream(pending)
            return
        self._finish(pending, [], ResponseCode.SERVFAIL)

    def _on_upstream_response(
        self, pending: _PendingQuery, payload: bytes, src_ip: str, src_port: int
    ) -> None:
        if pending not in self._pending:
            return
        # Challenge-response checks: source address/port and TXID must match.
        if src_ip != pending.upstream_ip or src_port != 53:
            self.stats.rejected_mismatched_responses += 1
            return
        try:
            response = DNSMessage.decode_cached(payload)
        except MessageError:
            self.stats.rejected_mismatched_responses += 1
            return
        if not response.is_response or response.txid != pending.txid:
            self.stats.rejected_mismatched_responses += 1
            return
        if not response.questions or response.question.key != (
            pending.question_name,
            pending.question_type,
        ):
            self.stats.rejected_mismatched_responses += 1
            return

        accepted = self._accept_records(pending, response)
        if accepted is None:
            self._finish(pending, [], ResponseCode.SERVFAIL)
            return
        answers = [
            record
            for record in accepted
            if record.name == pending.question_name
            and record.rtype in (pending.question_type, RRType.CNAME)
        ]
        self._finish(pending, answers, response.flags.rcode)

    def _accept_records(
        self, pending: _PendingQuery, response: DNSMessage
    ) -> Optional[list[ResourceRecord]]:
        """Apply bailiwick and DNSSEC checks; return cacheable records."""
        zone = self._zone_of(pending.question_name)
        in_bailiwick = [
            record for record in response.records()
            if record.rtype is not RRType.RRSIG and name_in_zone(record.name, zone)
        ]
        anchor = self._anchor_for(pending.question_name) if self.config.validate_dnssec else None
        if anchor is not None:
            rrsigs = [r for r in response.records() if r.rtype is RRType.RRSIG]
            answer_rrset = [
                r for r in response.answers
                if r.name == pending.question_name and r.rtype is pending.question_type
            ]
            if answer_rrset and not validate_rrset(anchor, answer_rrset, rrsigs):
                self.stats.validation_failures += 1
                return None
        if self.config.minimum_ttl > 0:
            in_bailiwick = [
                r.with_ttl(max(r.ttl, self.config.minimum_ttl)) for r in in_bailiwick
            ]
        self.cache.store(in_bailiwick, self.simulator.now)
        return in_bailiwick

    def _zone_of(self, name: str) -> str:
        name = normalize_name(name)
        for zone in [name] + parent_zones(name):
            if zone in self.zone_map:
                return zone
        return name

    def _finish(
        self,
        pending: _PendingQuery,
        answers: list[ResourceRecord],
        rcode: ResponseCode,
    ) -> None:
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
        if pending in self._pending:
            self._pending.remove(pending)
        pending.socket.close()
        if rcode is ResponseCode.SERVFAIL:
            self.stats.servfail_sent += 1
        if pending.local_callback is not None:
            pending.local_callback(
                pending.client_query.make_response(answers=answers, rcode=rcode)
            )
            return
        self._send_response(
            pending.client_query, answers, pending.client_ip, pending.client_port, rcode
        )

    # ------------------------------------------------------------ local API
    def resolve_local(
        self,
        name: str,
        rtype: RRType = RRType.A,
        callback: Optional[Callable[[DNSMessage], None]] = None,
    ) -> None:
        """Resolve a name on behalf of a process running on the resolver host.

        Used by measurement tooling co-located with the resolver; goes
        through the same cache and upstream path as network clients.
        """
        query = DNSMessage.query(name, rtype, txid=int(self._rng.integers(0, 1 << 16)))
        cached = self.cache.lookup(name, rtype, self.simulator.now)
        if cached is not None:
            self.stats.cache_hits += 1
            if callback is not None:
                callback(query.make_response(answers=cached))
            return
        self.stats.cache_misses += 1
        self._query_upstream(query, self.host.ip, 0, local_callback=callback or (lambda _: None))

    # ------------------------------------------------------------ inspection
    def cached_addresses(self, name: str, rtype: RRType = RRType.A) -> list[str]:
        """Addresses currently cached for ``name`` (ground-truth inspection)."""
        records = self.cache.lookup(name, rtype, self.simulator.now)
        if not records:
            return []
        return [str(record.data) for record in records if record.rtype is rtype]

    def is_poisoned(self, name: str, attacker_addresses: set[str]) -> bool:
        """True when any cached address for ``name`` is attacker controlled."""
        return any(addr in attacker_addresses for addr in self.cached_addresses(name))
