"""Tests for the shared-resolver discovery study (section VIII-B3)."""

from repro.measurement.population import (
    SharedResolverPopulationParameters,
    SharedResolverSpec,
    generate_shared_resolvers,
)
from repro.measurement.shared_resolvers import SharedResolverStudy


class TestClassification:
    def test_web_only(self):
        spec = SharedResolverSpec(address="102.0.0.1")
        report = SharedResolverStudy([spec]).run()
        assert report.web_only == 1 and report.triggerable == 0

    def test_smtp_shared_is_triggerable(self):
        spec = SharedResolverSpec(address="102.0.0.1", smtp_server_in_slash24=True)
        report = SharedResolverStudy([spec]).run()
        assert report.web_and_smtp == 1 and report.triggerable == 1

    def test_open_resolver_is_triggerable(self):
        spec = SharedResolverSpec(address="102.0.0.1", is_open_resolver=True)
        report = SharedResolverStudy([spec]).run()
        assert report.open_resolvers == 1 and report.triggerable == 1

    def test_open_and_smtp_counted_once(self):
        spec = SharedResolverSpec(
            address="102.0.0.1", is_open_resolver=True, smtp_server_in_slash24=True
        )
        report = SharedResolverStudy([spec]).run()
        assert report.open_and_smtp == 1
        assert report.triggerable == 1
        assert report.web_only == 0


class TestPaperBreakdown:
    def test_fractions_match_section8b3(self):
        resolvers = generate_shared_resolvers(SharedResolverPopulationParameters())
        report = SharedResolverStudy(resolvers).run()
        fractions = report.fractions()
        assert abs(fractions["web_only"] - 0.862) < 0.02
        assert abs(fractions["web_and_smtp"] - 0.113) < 0.02
        assert abs(fractions["open"] - 0.023) < 0.01
        assert abs(fractions["open_and_smtp"] - 0.002) < 0.005
        assert abs(report.triggerable_fraction - 0.138) < 0.025
        assert report.total_resolvers == 18_668

    def test_categories_partition_the_population(self):
        resolvers = generate_shared_resolvers()
        report = SharedResolverStudy(resolvers).run()
        assert (
            report.web_only + report.web_and_smtp + report.open_resolvers + report.open_and_smtp
            == report.total_resolvers
        )

    def test_empty_population(self):
        report = SharedResolverStudy([]).run()
        assert report.triggerable_fraction == 0.0
