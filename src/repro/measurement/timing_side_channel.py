"""The timing side-channel cache test that did not work (Figure 7).

To find out whether web clients' resolvers also serve NTP clients, the paper
tried a latency-based cache test: query a resolver for ``pool.ntp.org``,
query it again a few times, and compare the first latency ``t_first`` to the
average of the subsequent ones ``t_avg``.  A cached record should make
``t_first - t_avg`` small; a cache miss on the first query should make it
roughly the resolver-to-nameserver round trip.

Run against the open-resolver population, the distribution of
``t_first - t_avg`` shows *no* clean separation into two groups — RTT
variance, partially cached parent zones and resolver-side load smear the two
populations into one another — so no threshold ``T`` can be chosen and the
paper abandons the method (and so do we; the negative result is the point of
Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.measurement.population import OpenResolverSpec


@dataclass
class TimingProbeResult:
    """Latency measurements for one resolver."""

    resolver: OpenResolverSpec
    t_first: float
    t_avg: float
    actually_cached: bool

    @property
    def latency_difference(self) -> float:
        """The classifier input ``t_first - t_avg`` (seconds)."""
        return self.t_first - self.t_avg


@dataclass
class TimingSideChannelReport:
    """Aggregate outcome of the timing study."""

    results: list[TimingProbeResult] = field(default_factory=list)

    def differences_ms(self) -> np.ndarray:
        """All latency differences in milliseconds (the x-axis of Figure 7)."""
        return np.array([r.latency_difference * 1000.0 for r in self.results])

    def histogram(
        self, bins: int = 25, value_range: tuple[float, float] = (-50.0, 200.0)
    ) -> tuple[np.ndarray, np.ndarray]:
        """Histogram of latency differences, clipped like the paper's figure."""
        values = np.clip(self.differences_ms(), value_range[0], value_range[1])
        return np.histogram(values, bins=bins, range=value_range)

    def best_threshold_accuracy(self) -> tuple[float, float]:
        """Best achievable classification accuracy over all thresholds.

        Returns ``(threshold_ms, accuracy)``.  The study's conclusion is that
        the best accuracy stays far from reliable (there is no obvious
        bimodal split), so the method needs per-resolver calibration and
        cache eviction — too invasive to run at scale.
        """
        if not self.results:
            return (0.0, 0.0)
        differences = self.differences_ms()
        labels = np.array([r.actually_cached for r in self.results])
        best_threshold, best_accuracy = 0.0, 0.0
        for threshold in np.linspace(differences.min(), differences.max(), 201):
            predictions = differences < threshold
            accuracy = float(np.mean(predictions == labels))
            if accuracy > best_accuracy:
                best_threshold, best_accuracy = float(threshold), accuracy
        return best_threshold, best_accuracy


class TimingSideChannelStudy:
    """Runs the latency-based cache probe over the resolver population."""

    def __init__(
        self,
        resolvers: list[OpenResolverSpec],
        followup_queries: int = 3,
        jitter: float = 0.025,
        first_query_overhead: float = 0.03,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.resolvers = resolvers
        self.followup_queries = followup_queries
        self.jitter = jitter
        #: Mean of the exponential extra latency many resolvers add to the
        #: first query of a burst (connection tracking, cache-miss handling
        #: of sibling records, load) regardless of caching state — one of the
        #: confounders that ruin the threshold.
        self.first_query_overhead = first_query_overhead
        self.rng = rng or np.random.default_rng(4)

    def probe(self, resolver: OpenResolverSpec) -> TimingProbeResult:
        """Model the first query plus the follow-up queries to one resolver.

        The first query costs the resolver RTT plus — on a cache miss — the
        upstream RTT; follow-up queries are cache hits either way.  Every
        measurement carries jitter; a fraction of resolvers have the *parent*
        zone cached (which shortens the miss penalty) and many add a
        first-query processing overhead unrelated to caching.  Together these
        confounders are what prevent a usable threshold.
        """
        cached = resolver.is_ntp_client_resolver()
        parent_cached = bool(self.rng.random() < 0.5)
        upstream_penalty = resolver.upstream_rtt * (0.35 if parent_cached else 1.0)
        noise = lambda: float(self.rng.normal(0.0, self.jitter))  # noqa: E731
        overhead = float(self.rng.exponential(self.first_query_overhead))
        t_first = resolver.rtt + (0.0 if cached else upstream_penalty) + overhead + abs(noise())
        followups = [resolver.rtt + abs(noise()) for _ in range(self.followup_queries)]
        return TimingProbeResult(
            resolver=resolver,
            t_first=t_first,
            t_avg=float(np.mean(followups)),
            actually_cached=cached,
        )

    def run(self) -> TimingSideChannelReport:
        """Probe every responding resolver and collect the distribution."""
        report = TimingSideChannelReport()
        for resolver in self.resolvers:
            if not resolver.responds:
                continue
            report.results.append(self.probe(resolver))
        return report
