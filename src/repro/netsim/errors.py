"""Exception hierarchy for the network simulator."""


class NetSimError(Exception):
    """Base class for all simulator errors."""


class AddressError(NetSimError):
    """An IPv4 address string or integer was malformed."""


class PacketError(NetSimError):
    """A packet could not be encoded or decoded."""


class FragmentationError(NetSimError):
    """Fragmentation or reassembly failed (bad offsets, MTU too small...)."""


class ChecksumError(NetSimError):
    """A checksum did not verify on receive."""


class PortInUseError(NetSimError):
    """A UDP port is already bound on the host."""


class NoRouteError(NetSimError):
    """The network has no route/link able to deliver a packet."""


class SimulationError(NetSimError):
    """The event loop was used incorrectly (e.g. scheduling in the past)."""


class InvariantViolation(SimulationError):
    """A strict-mode simulator invariant failed (see ``Simulator(strict=True)``).

    Raised when heap monotonicity, event/cancellation accounting, or burst
    atomicity is broken — conservation laws the chaos suite asserts under
    arbitrary fault sequences.
    """


class FaultConfigError(NetSimError):
    """A fault-injection component or plan was misconfigured."""
