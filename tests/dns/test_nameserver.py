"""Tests for authoritative nameservers and the pool.ntp.org model."""

import numpy as np

from repro.dns.dnssec import ZoneSigningKey, sign_zone
from repro.dns.message import DNSMessage, ResponseCode
from repro.dns.nameserver import AuthoritativeNameserver, PoolNameserver
from repro.dns.records import RRType, a_record, ns_record
from repro.dns.zone import Zone
from repro.netsim.addresses import address_range
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator


def build_env():
    sim = Simulator(seed=3)
    net = Network(sim)
    ns_host = net.add_host("ns", "198.51.100.10")
    client_host = net.add_host("client", "192.0.2.10")
    return sim, net, ns_host, client_host


def query_over_network(sim, client_host, ns_ip, name, rtype=RRType.A):
    responses = []
    socket = client_host.bind(0)
    socket.on_datagram = lambda payload, ip, port: responses.append(DNSMessage.decode(payload))
    socket.sendto(DNSMessage.query(name, rtype, txid=9).encode(), ns_ip, 53)
    sim.run()
    socket.close()
    return responses[0] if responses else None


class TestAuthoritativeNameserver:
    def make_server(self, ns_host):
        zone = Zone(origin="example.org")
        zone.add(a_record("www.example.org", "192.0.2.80"))
        zone.add(ns_record("example.org", "ns1.example.org"))
        zone.add(a_record("ns1.example.org", "198.51.100.10"))
        return AuthoritativeNameserver(ns_host, zones=[zone])

    def test_answers_a_query(self):
        sim, net, ns_host, client = build_env()
        self.make_server(ns_host)
        response = query_over_network(sim, client, "198.51.100.10", "www.example.org")
        assert response.flags.rcode is ResponseCode.NOERROR
        assert [str(r.data) for r in response.answers] == ["192.0.2.80"]
        assert response.flags.aa

    def test_nxdomain_for_unknown_name(self):
        sim, net, ns_host, client = build_env()
        self.make_server(ns_host)
        response = query_over_network(sim, client, "198.51.100.10", "missing.example.org")
        assert response.flags.rcode is ResponseCode.NXDOMAIN

    def test_refused_outside_zones(self):
        sim, net, ns_host, client = build_env()
        self.make_server(ns_host)
        response = query_over_network(sim, client, "198.51.100.10", "other.test")
        assert response.flags.rcode is ResponseCode.REFUSED

    def test_authority_and_glue_attached(self):
        sim, net, ns_host, client = build_env()
        self.make_server(ns_host)
        response = query_over_network(sim, client, "198.51.100.10", "www.example.org")
        assert any(r.rtype is RRType.NS for r in response.authority)
        assert any(r.name == "ns1.example.org" for r in response.additional)

    def test_cname_followed(self):
        sim, net, ns_host, client = build_env()
        server = self.make_server(ns_host)
        zone = server.zones[0]
        zone.add(a_record("real.example.org", "192.0.2.99"))
        zone.add(
            __import__("repro.dns.records", fromlist=["cname_record"]).cname_record(
                "alias.example.org", "real.example.org"
            )
        )
        response = query_over_network(sim, client, "198.51.100.10", "alias.example.org")
        assert any(str(r.data) == "192.0.2.99" for r in response.answers)

    def test_signed_zone_includes_rrsig(self):
        sim, net, ns_host, client = build_env()
        zone = Zone(origin="time.cloudflare.com")
        zone.add(a_record("time.cloudflare.com", "162.159.200.1"))
        key = ZoneSigningKey.generate(zone.origin)
        sign_zone(zone, key)
        AuthoritativeNameserver(ns_host, zones=[zone], signing_keys={zone.origin: key})
        response = query_over_network(sim, client, "198.51.100.10", "time.cloudflare.com")
        assert any(r.rtype is RRType.RRSIG for r in response.answers)

    def test_malformed_query_ignored(self):
        sim, net, ns_host, client = build_env()
        server = self.make_server(ns_host)
        socket = client.bind(0)
        socket.sendto(b"\x00\x01garbage", "198.51.100.10", 53)
        sim.run()
        assert server.stats.malformed_queries == 1
        assert server.stats.responses_sent == 0


class TestPoolNameserver:
    def make_pool_ns(self, ns_host, rotation="random", **kwargs):
        return PoolNameserver(
            ns_host,
            address_range("203.0.113.1", 50),
            rotation=rotation,
            rng=np.random.default_rng(1),
            **kwargs,
        )

    def test_four_addresses_with_150s_ttl(self):
        sim, net, ns_host, client = build_env()
        self.make_pool_ns(ns_host)
        response = query_over_network(sim, client, "198.51.100.10", "pool.ntp.org")
        a_records = [r for r in response.answers if r.rtype is RRType.A]
        assert len(a_records) == 4
        assert all(r.ttl == 150 for r in a_records)

    def test_country_zone_names_answered(self):
        sim, net, ns_host, client = build_env()
        self.make_pool_ns(ns_host)
        response = query_over_network(sim, client, "198.51.100.10", "de.pool.ntp.org")
        assert len([r for r in response.answers if r.rtype is RRType.A]) == 4

    def test_random_rotation_varies_addresses(self):
        _, _, ns_host, _ = build_env()
        server = self.make_pool_ns(ns_host, rotation="random")
        draws = {tuple(server.select_addresses("pool.ntp.org")) for _ in range(10)}
        assert len(draws) > 1

    def test_fixed_rotation_is_deterministic(self):
        _, _, ns_host, _ = build_env()
        server = self.make_pool_ns(ns_host, rotation="fixed")
        draws = {tuple(server.select_addresses("pool.ntp.org")) for _ in range(10)}
        assert len(draws) == 1

    def test_addresses_come_from_pool(self):
        _, _, ns_host, _ = build_env()
        server = self.make_pool_ns(ns_host)
        assert set(server.select_addresses("pool.ntp.org")) <= set(server.pool_addresses)

    def test_response_padding_grows_response(self):
        sim, net, ns_host, client = build_env()
        server = self.make_pool_ns(ns_host, response_padding=200)
        query = DNSMessage.query("pool.ntp.org", txid=1)
        assert len(server.build_response(query).encode()) > 300

    def test_ns_records_still_served(self):
        sim, net, ns_host, client = build_env()
        self.make_pool_ns(ns_host)
        response = query_over_network(sim, client, "198.51.100.10", "pool.ntp.org", RRType.NS)
        assert any(r.rtype is RRType.NS for r in response.answers)


class TestEncodedResponseCache:
    """Identical responses are encoded once and replayed with a fresh TXID."""

    def make_server(self, ns_host):
        zone = Zone(origin="example.org")
        zone.add(a_record("www.example.org", "192.0.2.80"))
        zone.add(ns_record("example.org", "ns1.example.org"))
        zone.add(a_record("ns1.example.org", "198.51.100.10"))
        return AuthoritativeNameserver(ns_host, zones=[zone])

    def test_cached_bytes_identical_to_fresh_encode(self):
        sim, net, ns_host, client = build_env()
        server = self.make_server(ns_host)
        query = DNSMessage.query("www.example.org", txid=0x1111)
        response = server.build_response(query)
        first = server.encode_response(response)
        assert server.stats.encode_cache_misses == 1
        second = server.encode_response(server.build_response(query))
        assert server.stats.encode_cache_hits == 1
        assert second == first == response.encode()

    def test_txid_is_patched_per_query(self):
        sim, net, ns_host, client = build_env()
        server = self.make_server(ns_host)
        wire_a = server.encode_response(
            server.build_response(DNSMessage.query("www.example.org", txid=0x0A0A))
        )
        wire_b = server.encode_response(
            server.build_response(DNSMessage.query("www.example.org", txid=0x0B0B))
        )
        assert wire_a[:2] == b"\x0a\x0a" and wire_b[:2] == b"\x0b\x0b"
        assert wire_a[2:] == wire_b[2:]
        assert DNSMessage.decode(wire_b).txid == 0x0B0B

    def test_fixed_rotation_pool_reuses_encoding(self):
        sim, net, ns_host, client = build_env()
        pool = PoolNameserver(
            ns_host,
            address_range("203.0.113.1", 16),
            rotation="fixed",
            rng=np.random.default_rng(0),
        )
        for txid in (1, 2, 3):
            query_over_network(sim, client, "198.51.100.10", "pool.ntp.org")
        assert pool.stats.encode_cache_misses == 1
        assert pool.stats.encode_cache_hits == 2

    def test_different_answers_do_not_share_cache_entries(self):
        sim, net, ns_host, client = build_env()
        pool = PoolNameserver(
            ns_host,
            address_range("203.0.113.1", 64),
            rotation="random",
            rng=np.random.default_rng(0),
        )
        first = query_over_network(sim, client, "198.51.100.10", "pool.ntp.org")
        second = query_over_network(sim, client, "198.51.100.10", "pool.ntp.org")
        # Random rotation drew different address sets, so the responses must
        # differ (not be served from one stale cache entry).
        assert [str(r.data) for r in first.answers] != [str(r.data) for r in second.answers]
