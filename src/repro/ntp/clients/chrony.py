"""Model of the chrony client.

chrony's default configuration uses a single ``pool`` directive expanding to
four sources.  When a source becomes unreachable chrony replaces it through a
new DNS lookup, so *any* removed source triggers the run-time DNS query the
attack needs (the attacker still has to remove a majority of sources before
the shifted time wins the source selection).  chrony is more conservative
than ntpd about large corrections, which is why the measured attack duration
against chrony (57 minutes) exceeds ntpd's (paper Table II).
"""

from __future__ import annotations

from repro.ntp.clients.base import BaseNTPClient, NTPClientConfig


class ChronyClient(BaseNTPClient):
    """The chrony behavioural model."""

    client_name = "chrony"
    pool_usage_share = 0.048
    supports_boot_time_attack = True
    supports_runtime_attack = True

    @classmethod
    def default_config(cls) -> NTPClientConfig:
        return NTPClientConfig(
            pool_domains=["pool.ntp.org"],
            desired_associations=4,
            min_associations=4,
            max_associations=8,
            poll_interval=128.0,
            unreachable_after=10,
            runtime_dns=True,
            sntp=False,
            step_threshold=0.128,
            step_delay=1200.0,
            min_step_samples=6,
            panic_threshold=None,
            act_as_server=False,
        )
