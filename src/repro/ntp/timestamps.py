"""NTP timestamp format (RFC 5905 section 6).

NTP timestamps are 64-bit fixed-point numbers: 32 bits of seconds since
1900-01-01 and 32 bits of fraction.  The simulator's "true time" is treated
as Unix time, so conversion adds the 70-year era offset.

Hot-path note: the wire layer creates hundreds of thousands of timestamps per
experiment (four per decoded packet).  Construction through the public
``NTPTimestamp(...)`` constructor validates both fields; the wire layer
instead uses :func:`timestamp_from_wire`, which skips validation because
32-bit wire fields are in range by construction, and the all-zero timestamp
(unset fields, the single most common value on the wire) is a shared
singleton returned by :meth:`NTPTimestamp.zero`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seconds between the NTP epoch (1900) and the Unix epoch (1970).
NTP_UNIX_EPOCH_DELTA = 2_208_988_800

_FRACTION = 1 << 32


@dataclass(frozen=True, order=True, slots=True)
class NTPTimestamp:
    """A 64-bit NTP timestamp (seconds and fraction since 1900)."""

    seconds: int
    fraction: int

    def __post_init__(self) -> None:
        if not 0 <= self.seconds < (1 << 32):
            raise ValueError(f"NTP seconds out of range: {self.seconds}")
        if not 0 <= self.fraction < _FRACTION:
            raise ValueError(f"NTP fraction out of range: {self.fraction}")

    @classmethod
    def from_unix(cls, unix_time: float) -> "NTPTimestamp":
        """Convert a Unix timestamp (float seconds) to NTP format."""
        ntp_time = unix_time + NTP_UNIX_EPOCH_DELTA
        seconds = int(ntp_time)
        fraction = int(round((ntp_time - seconds) * _FRACTION)) % _FRACTION
        return timestamp_from_wire(seconds & 0xFFFFFFFF, fraction)

    def to_unix(self) -> float:
        """Convert back to a Unix timestamp."""
        return self.seconds - NTP_UNIX_EPOCH_DELTA + self.fraction / _FRACTION

    def to_bytes(self) -> bytes:
        """Encode as 8 wire bytes."""
        return self.seconds.to_bytes(4, "big") + self.fraction.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "NTPTimestamp":
        """Decode 8 wire bytes."""
        if len(data) != 8:
            raise ValueError("NTP timestamp must be 8 bytes")
        return timestamp_from_wire(
            int.from_bytes(data[:4], "big"),
            int.from_bytes(data[4:], "big"),
        )

    @classmethod
    def zero(cls) -> "NTPTimestamp":
        """The all-zero timestamp used for unset fields (a shared singleton)."""
        return _ZERO

    def is_zero(self) -> bool:
        """True for the unset timestamp."""
        return self.seconds == 0 and self.fraction == 0

    def __sub__(self, other: "NTPTimestamp") -> float:
        """Difference between two timestamps in seconds (as a float)."""
        return (
            (self.seconds - other.seconds)
            + (self.fraction - other.fraction) / _FRACTION
        )


_TS_NEW = NTPTimestamp.__new__
_TS_SETATTR = object.__setattr__


def timestamp_from_wire(seconds: int, fraction: int) -> NTPTimestamp:
    """Build a timestamp from two already-valid 32-bit wire values.

    Bypasses the frozen-dataclass constructor (and its range validation,
    which cannot fail for values unpacked from 32-bit wire fields) — this is
    the allocation the packet decoder performs four times per packet.
    """
    if fraction == 0 and seconds == 0:
        return _ZERO
    timestamp = _TS_NEW(NTPTimestamp)
    _TS_SETATTR(timestamp, "seconds", seconds)
    _TS_SETATTR(timestamp, "fraction", fraction)
    return timestamp


def unix_from_wire(seconds: int, fraction: int) -> float:
    """``NTPTimestamp(seconds, fraction).to_unix()`` without the instance.

    Deliberately *not* memoised: server transmit timestamps advance
    monotonically, so a cache here would pay hashing and eviction on every
    response for a ~0% hit rate.  The arithmetic is the fast path.
    """
    return seconds - NTP_UNIX_EPOCH_DELTA + fraction / _FRACTION


#: The shared unset timestamp (``NTPTimestamp.zero()``).
_ZERO = NTPTimestamp(seconds=0, fraction=0)
