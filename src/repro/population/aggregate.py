"""Streaming, constant-memory aggregation for population-scale sweeps.

A thousand-client fleet must not return a thousand per-client dicts
through the run store — at landscape scale that turns every sweep record
into megabytes.  Instead, fleets fold each client result into a
:class:`StreamingAggregate` as it resolves: success counts, per-client-type
breakdowns, and clock-shift / attack-duration quantiles held in
**fixed-bin histograms** whose memory is a function of the bin count, not
the fleet size.  Aggregates merge associatively (cell + cell = region), and
serialise to plain-JSON documents the store appends via
:meth:`repro.experiments.store.SweepWriter.append_aggregate`.

This module deliberately imports nothing else from ``repro`` and keeps
numpy optional (vectorised ``add_many`` when present, pure-python fold
otherwise) so aggregation works in minimal worker environments — pinned by
a numpy-absent subprocess test.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via subprocess test
    np = None


class FixedBinHistogram:
    """Equal-width bins over ``[lo, hi)`` with underflow/overflow buckets.

    Quantiles interpolate linearly inside the selected bin, which bounds
    the error by one bin width — the right trade for landscape cells,
    where the bin count (not the sample count) fixes the memory.
    """

    __slots__ = ("lo", "hi", "bins", "counts", "underflow", "overflow", "total")

    def __init__(self, lo: float, hi: float, bins: int) -> None:
        if not bins > 0:
            raise ValueError(f"bins must be > 0, got {bins}")
        if not hi > lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi})")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self.counts = [0] * self.bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0

    # ------------------------------------------------------------- folding
    def add(self, value: float) -> None:
        self.total += 1
        if value < self.lo:
            self.underflow += 1
            return
        if value >= self.hi:
            self.overflow += 1
            return
        index = int((value - self.lo) * self.bins / (self.hi - self.lo))
        # Guard the hi-adjacent float edge case (value*scale rounding up).
        self.counts[min(index, self.bins - 1)] += 1

    def add_many(self, values: Iterable[float]) -> None:
        if np is not None:
            array = np.asarray(list(values), dtype=float)
            if array.size == 0:
                return
            self.total += int(array.size)
            below = array < self.lo
            above = array >= self.hi
            self.underflow += int(below.sum())
            self.overflow += int(above.sum())
            inside = array[~(below | above)]
            if inside.size:
                indices = (
                    (inside - self.lo) * self.bins / (self.hi - self.lo)
                ).astype(int)
                indices = np.minimum(indices, self.bins - 1)
                folded = np.bincount(indices, minlength=self.bins)
                for index in np.nonzero(folded)[0]:
                    self.counts[int(index)] += int(folded[index])
            return
        for value in values:
            self.add(value)

    def merge(self, other: "FixedBinHistogram") -> None:
        if (other.lo, other.hi, other.bins) != (self.lo, self.hi, self.bins):
            raise ValueError(
                "cannot merge histograms with different binning: "
                f"[{self.lo}, {self.hi})x{self.bins} vs "
                f"[{other.lo}, {other.hi})x{other.bins}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.total += other.total

    # ------------------------------------------------------------ quantiles
    def quantile(self, q: float) -> Optional[float]:
        """Approximate ``q``-quantile (``None`` on an empty histogram).

        Under/overflow samples clamp to the range edges — the histogram
        knows only that they fell outside.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return None
        rank = q * (self.total - 1)
        cumulative = self.underflow
        if rank < cumulative:
            return self.lo
        width = (self.hi - self.lo) / self.bins
        for index, count in enumerate(self.counts):
            if count and rank < cumulative + count:
                # Linear interpolation within the bin.
                fraction = (rank - cumulative + 0.5) / count
                return self.lo + (index + min(fraction, 1.0)) * width
            cumulative += count
        return self.hi

    # --------------------------------------------------------- serialisation
    def to_document(self) -> dict[str, Any]:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins": self.bins,
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "total": self.total,
        }

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "FixedBinHistogram":
        histogram = cls(document["lo"], document["hi"], document["bins"])
        counts = list(document["counts"])
        if len(counts) != histogram.bins:
            raise ValueError(
                f"histogram document carries {len(counts)} counts for "
                f"{histogram.bins} bins"
            )
        histogram.counts = [int(count) for count in counts]
        histogram.underflow = int(document.get("underflow", 0))
        histogram.overflow = int(document.get("overflow", 0))
        histogram.total = int(document.get("total", 0))
        return histogram


#: Default binning for achieved clock shift (seconds; the paper's attacks
#: target shifts of hundreds of seconds either way).
SHIFT_RANGE = (-1000.0, 1000.0, 200)
#: Default binning for attack duration (minutes; Table II tops out ~180).
MINUTES_RANGE = (0.0, 240.0, 96)


class StreamingAggregate:
    """Constant-memory fold of per-client fleet results.

    ``fold`` consumes one client-result document (the shape
    :func:`repro.population.fleet.run_fleet` produces per client);
    ``merge`` combines cell aggregates associatively.  Everything
    serialises to a JSON document sized by the histogram bin counts.
    """

    __slots__ = ("total", "successes", "by_type", "shift", "minutes", "faults")

    def __init__(self) -> None:
        self.total = 0
        self.successes = 0
        #: Per-client-type ``[runs, successes]`` counters.
        self.by_type: dict[str, list[int]] = {}
        self.shift = FixedBinHistogram(*SHIFT_RANGE)
        self.minutes = FixedBinHistogram(*MINUTES_RANGE)
        #: Network fault-injection counters (``FaultStats`` field names),
        #: summed across every link the folded fleets touched.
        self.faults: dict[str, int] = {}

    def fold(
        self,
        client_type: str,
        success: bool,
        shift: Optional[float] = None,
        minutes: Optional[float] = None,
    ) -> None:
        self.total += 1
        counters = self.by_type.setdefault(client_type, [0, 0])
        counters[0] += 1
        if success:
            self.successes += 1
            counters[1] += 1
        if shift is not None:
            self.shift.add(float(shift))
        if minutes is not None:
            self.minutes.add(float(minutes))

    def fold_faults(self, counters: Mapping[str, Any]) -> None:
        """Sum a ``FaultStats.to_document()``-shaped counter map in."""
        for name, value in counters.items():
            self.faults[name] = self.faults.get(name, 0) + int(value)

    def merge(self, other: "StreamingAggregate") -> None:
        self.total += other.total
        self.successes += other.successes
        for client_type, (runs, wins) in other.by_type.items():
            counters = self.by_type.setdefault(client_type, [0, 0])
            counters[0] += runs
            counters[1] += wins
        self.shift.merge(other.shift)
        self.minutes.merge(other.minutes)
        self.fold_faults(other.faults)

    @property
    def success_rate(self) -> float:
        return self.successes / self.total if self.total else 0.0

    def to_document(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "successes": self.successes,
            "success_rate": round(self.success_rate, 6),
            "by_type": {
                name: {"runs": runs, "successes": wins}
                for name, (runs, wins) in sorted(self.by_type.items())
            },
            "shift_histogram": self.shift.to_document(),
            "minutes_histogram": self.minutes.to_document(),
            "shift_quantiles": {
                label: self.shift.quantile(q)
                for label, q in (("p10", 0.1), ("p50", 0.5), ("p90", 0.9))
            },
            "fault_stats": {
                name: count for name, count in sorted(self.faults.items())
            },
        }

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "StreamingAggregate":
        aggregate = cls()
        aggregate.total = int(document.get("total", 0))
        aggregate.successes = int(document.get("successes", 0))
        for name, counters in (document.get("by_type") or {}).items():
            aggregate.by_type[name] = [
                int(counters.get("runs", 0)),
                int(counters.get("successes", 0)),
            ]
        if "shift_histogram" in document:
            aggregate.shift = FixedBinHistogram.from_document(
                document["shift_histogram"]
            )
        if "minutes_histogram" in document:
            aggregate.minutes = FixedBinHistogram.from_document(
                document["minutes_histogram"]
            )
        aggregate.fold_faults(document.get("fault_stats") or {})
        return aggregate


__all__ = [
    "FixedBinHistogram",
    "MINUTES_RANGE",
    "SHIFT_RANGE",
    "StreamingAggregate",
]
