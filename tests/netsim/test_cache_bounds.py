"""Every wire-layer memo cache must be bounded.

Multi-million-packet sweeps run through the memoised IP/name conversions and
the decode/encode caches millions of times with attacker-controlled inputs
(spoofed source addresses, synthetic names, replayed payloads), so an
unbounded memo is a slow memory leak.  This test enumerates the caches on
the hot paths and asserts each one is either an ``lru_cache`` with a finite
``maxsize`` or a dict cache with an explicit clear-on-full bound that it
actually honours.
"""

from __future__ import annotations

import functools

import repro.dns.message as message_module
import repro.dns.names as names_module
import repro.netsim.addresses as addresses_module
import repro.netsim.udp as udp_module
import repro.ntp.packet as packet_module
import repro.ntp.timestamps as timestamps_module

#: Every lru_cache-decorated function on the wire-layer hot paths.
LRU_CACHED_FUNCTIONS = [
    addresses_module.ip_to_int,
    addresses_module.int_to_ip,
    addresses_module.ip_to_bytes,
    names_module.normalize_name,
    names_module._wire_parts,
    names_module._uncompressed_wire,
    udp_module._address_word_sum,
    udp_module._udp_checksum_cached,
    packet_module._decode_refid,
    packet_module._encode_refid,
]


class TestLRUCachesAreBounded:
    def test_every_memo_declares_a_finite_maxsize(self):
        for func in LRU_CACHED_FUNCTIONS:
            info = func.cache_info()
            assert info.maxsize is not None, f"{func.__name__} is unbounded"
            assert info.maxsize <= 65536, f"{func.__name__} bound suspiciously large"

    def test_no_unbounded_lru_in_hot_modules(self):
        # Catch future additions: scan module namespaces for cached callables.
        for module in (
            addresses_module,
            names_module,
            udp_module,
            packet_module,
            timestamps_module,
            message_module,
        ):
            for name, value in vars(module).items():
                if isinstance(value, functools._lru_cache_wrapper):
                    assert value.cache_info().maxsize is not None, (
                        f"{module.__name__}.{name} is an unbounded lru_cache"
                    )


class TestDictCachesHonourTheirBounds:
    def test_name_intern_tables_clear_on_full(self):
        names_module._NAME_INTERN.clear()
        for index in range(names_module.INTERN_MAX_ENTRIES + 10):
            names_module.intern_name(f"host-{index}.example")
        assert len(names_module._NAME_INTERN) <= names_module.INTERN_MAX_ENTRIES

    def test_label_intern_table_clears_on_full(self):
        names_module._LABEL_INTERN.clear()
        for index in range(names_module.INTERN_MAX_ENTRIES + 10):
            names_module._intern_label(f"label-{index}".encode("ascii"))
        assert len(names_module._LABEL_INTERN) <= names_module.INTERN_MAX_ENTRIES

    def test_decode_cache_clears_on_full(self):
        from repro.dns.message import DNSMessage
        from repro.dns.records import a_record

        message_module._DECODE_CACHE.clear()
        limit = message_module.DECODE_CACHE_MAX_ENTRIES
        for index in range(limit + 10):
            query = DNSMessage.query(f"h{index}.example", txid=index & 0xFFFF)
            response = query.make_response(
                answers=[a_record(f"h{index}.example", "203.0.113.1")]
            )
            DNSMessage.decode_cached(response.encode())
        assert len(message_module._DECODE_CACHE) <= limit
