"""Tests for the compiled delivery pipelines, link trust profiles,
batched delivery, strict routing and pipeline stage attribution."""

import pytest

from repro.netsim.datapath import (
    DEFAULT_LINK_PROFILE,
    LinkProfile,
    TRUSTED_LINK_PROFILE,
    UNROUTED_PIPELINE,
)
from repro.netsim.errors import NetSimError, NoRouteError
from repro.netsim.network import Link, Network, PIPELINE_CACHE_MAX_ENTRIES
from repro.netsim.packet import IPProtocol, IPv4Packet
from repro.netsim.simulator import Simulator
from repro.netsim.udp import UDPDatagram, encode_udp
from repro.perf import STAGES


def make_net(**network_kwargs):
    sim = Simulator(seed=7)
    net = Network(sim, default_latency=0.01, **network_kwargs)
    a = net.add_host("a", "10.0.0.1")
    b = net.add_host("b", "10.0.0.2")
    return sim, net, a, b


def corrupted_packet(src: str, dst: str) -> IPv4Packet:
    """A UDP packet whose checksum was computed for a different source."""
    datagram = UDPDatagram(src_port=53, dst_port=53, payload=b"forged")
    payload = encode_udp("9.9.9.9", dst, datagram)
    return IPv4Packet(src=src, dst=dst, protocol=IPProtocol.UDP, payload=payload)


class TestLinkProfiles:
    def test_default_profile_verifies_everything(self):
        profile = LinkProfile.default()
        assert profile.is_default
        assert profile.verify_checksum and profile.defrag_bookkeeping
        assert profile is DEFAULT_LINK_PROFILE  # shared singleton

    def test_trusted_profile_skips_verification_stages(self):
        profile = LinkProfile.trusted()
        assert not profile.is_default
        assert not profile.verify_checksum and not profile.defrag_bookkeeping
        assert profile is TRUSTED_LINK_PROFILE

    def test_default_link_drops_bad_checksum(self):
        sim, net, a, b = make_net()
        received = []
        b.bind(53, lambda payload, ip, port: received.append(payload))
        net.inject(corrupted_packet("10.0.0.1", "10.0.0.2"))
        sim.run()
        assert received == []
        assert b.stats.udp_checksum_failures == 1

    def test_trusted_link_skips_checksum_verification(self):
        sim, net, a, b = make_net()
        net.set_link(
            "10.0.0.1", "10.0.0.2", Link(latency=0.01, profile=LinkProfile.trusted())
        )
        received = []
        b.bind(53, lambda payload, ip, port: received.append(payload))
        net.inject(corrupted_packet("10.0.0.1", "10.0.0.2"))
        sim.run()
        # Delivered despite the bad checksum: trust disabled verification.
        assert received == [b"forged"]
        assert b.stats.udp_checksum_failures == 0

    def test_trust_link_helper_keeps_latency(self):
        sim, net, a, b = make_net()
        net.set_link("10.0.0.1", "10.0.0.2", Link(latency=0.5))
        net.trust_link("10.0.0.1", "10.0.0.2")
        link = net.link_between("10.0.0.1", "10.0.0.2")
        assert link.latency == 0.5
        assert link.profile is TRUSTED_LINK_PROFILE

    def test_trusted_link_still_reassembles_fragments(self):
        sim, net, a, b = make_net()
        net.trust_link("10.0.0.1", "10.0.0.2")
        received = []
        b.bind(53, lambda payload, ip, port: received.append(payload))
        from repro.netsim.icmp import frag_needed

        message = frag_needed(296)
        message.metadata["about_destination"] = "10.0.0.2"
        a._handle_icmp(message, "10.0.0.99")
        payload = bytes(range(256)) * 4
        a.bind(0).sendto(payload, "10.0.0.2", 53)
        sim.run()
        assert received == [payload]
        assert b.defrag.stats.packets_reassembled == 1

    def test_mixed_profile_verify_only(self):
        sim, net, a, b = make_net()
        profile = LinkProfile("verify-only", verify_checksum=True, defrag_bookkeeping=False)
        net.set_link("10.0.0.1", "10.0.0.2", Link(latency=0.01, profile=profile))
        received = []
        b.bind(53, lambda payload, ip, port: received.append(payload))
        net.inject(corrupted_packet("10.0.0.1", "10.0.0.2"))
        a.bind(4000).sendto(b"good", "10.0.0.2", 53)
        sim.run()
        # Checksum stage still active, bad packet dropped, good delivered.
        assert received == [b"good"]
        assert b.stats.udp_checksum_failures == 1


class TestStrictRouting:
    def test_default_network_silently_drops_unknown_destination(self):
        sim, net, a, _ = make_net()
        a.bind(0).sendto(b"x", "172.16.0.1", 53)
        sim.run()
        assert net.packets_dropped == 1

    def test_strict_network_raises_typed_error(self):
        sim, net, a, _ = make_net(strict_routing=True)
        socket = a.bind(0)
        with pytest.raises(NoRouteError):
            socket.sendto(b"x", "172.16.0.1", 53)

    def test_strict_error_is_a_netsim_error_not_a_keyerror(self):
        _, net, _, _ = make_net(strict_routing=True)
        packet = IPv4Packet(
            src="10.0.0.1", dst="172.16.0.1", protocol=IPProtocol.UDP, payload=b""
        )
        try:
            net.transmit(packet)
        except NetSimError:
            pass  # the typed hierarchy, as required
        except KeyError:  # pragma: no cover - the regression this guards
            pytest.fail("unknown destination raised KeyError, not NetSimError")
        else:
            pytest.fail("strict routing did not raise for an unknown destination")

    def test_strict_batch_raises_too(self):
        _, net, _, _ = make_net(strict_routing=True)
        packet = IPv4Packet(
            src="10.0.0.1", dst="172.16.0.1", protocol=IPProtocol.UDP, payload=b""
        )
        with pytest.raises(NoRouteError):
            net.transmit_batch([packet])


class TestPipelineCache:
    def test_pipeline_for_unknown_destination_raises(self):
        _, net, _, _ = make_net()
        with pytest.raises(NoRouteError):
            net.pipeline_for("10.0.0.1", "172.16.0.1")

    def test_pipeline_cached_and_reused(self):
        _, net, _, _ = make_net()
        first = net.pipeline_for("10.0.0.1", "10.0.0.2")
        assert net.pipeline_for("10.0.0.1", "10.0.0.2") is first

    def test_set_link_invalidates_compiled_pipeline(self):
        sim, net, a, b = make_net()
        arrivals = []
        b.bind(53, lambda payload, ip, port: arrivals.append(sim.now))
        a.bind(4000).sendto(b"x", "10.0.0.2", 53)
        sim.run()
        net.set_link("10.0.0.1", "10.0.0.2", Link(latency=0.5))
        a.bind(4001).sendto(b"x", "10.0.0.2", 53)
        sim.run()
        assert arrivals[0] == pytest.approx(0.01)
        # Second send left at t=0.01 over the re-compiled 0.5 s link.
        assert arrivals[1] == pytest.approx(0.51)

    def test_add_host_invalidates_unrouted_entry(self):
        sim, net, a, _ = make_net()
        a.bind(4000).sendto(b"x", "10.0.0.3", 53)
        sim.run()
        assert net.packets_dropped == 1
        # Register the host afterwards: the cached drop entry must not stick.
        c = net.add_host("c", "10.0.0.3")
        received = []
        c.bind(53, lambda payload, ip, port: received.append(payload))
        a.bind(4001).sendto(b"x", "10.0.0.3", 53)
        sim.run()
        assert received == [b"x"]

    def test_pipeline_cache_bounded(self):
        _, net, _, _ = make_net()
        limit = PIPELINE_CACHE_MAX_ENTRIES
        # Simulate a spoofing sweep over unique claimed sources.
        net._pipelines.clear()
        for index in range(limit + 10):
            net._compile_pipeline(f"src-{index}", "10.0.0.2")
        assert len(net._pipelines) <= limit

    def test_unrouted_pipeline_is_shared(self):
        _, net, _, _ = make_net()
        net._compile_pipeline("10.0.0.1", "172.16.0.9")
        assert net._pipelines[("10.0.0.1", "172.16.0.9")] is UNROUTED_PIPELINE

    def test_negative_latency_rejected(self):
        _, net, _, _ = make_net()
        from repro.netsim.errors import SimulationError

        with pytest.raises(SimulationError):
            net.set_link("10.0.0.1", "10.0.0.2", Link(latency=-0.1))


class TestBatchedDelivery:
    def _query_packet(self, src, dst, ipid):
        payload = encode_udp(src, dst, UDPDatagram(4000, 53, b"ping"))
        return IPv4Packet.udp(src, dst, payload, ipid)

    def test_receive_batch_equals_sequential_receive(self):
        sim, net, a, b = make_net()
        received = []
        b.bind(53, lambda payload, ip, port: received.append(payload))
        packets = [self._query_packet("10.0.0.1", "10.0.0.2", i) for i in range(5)]
        b.receive_batch(packets)
        assert received == [b"ping"] * 5
        assert b.stats.udp_received == 5

    def test_transmit_batch_counts_and_delivers(self):
        sim, net, a, b = make_net()
        received = []
        b.bind(53, lambda payload, ip, port: received.append(payload))
        packets = [self._query_packet("10.0.0.1", "10.0.0.2", i) for i in range(8)]
        packets.append(self._query_packet("10.0.0.1", "172.16.0.1", 99))  # unrouted
        net.transmit_batch(packets)
        sim.run()
        assert received == [b"ping"] * 8
        assert net.packets_transmitted == 9
        assert net.packets_dropped == 1

    def test_inject_batch_marks_spoofed(self):
        sim, net, a, b = make_net()
        packets = [self._query_packet("10.0.0.1", "10.0.0.2", i) for i in range(3)]
        net.inject_batch(packets)
        assert all(p.metadata["spoofed"] for p in packets)


class TestStageAttribution:
    def test_pipeline_stages_counted_when_enabled(self):
        STAGES.reset()
        STAGES.enable()
        try:
            sim, net, a, b = make_net()
            received = []
            b.bind(53, lambda payload, ip, port: received.append(payload))
            a.bind(4000).sendto(b"hello", "10.0.0.2", 53)
            sim.run()
            snapshot = STAGES.snapshot(wall_time=1.0)
        finally:
            STAGES.disable()
            STAGES.reset()
        assert received == [b"hello"]
        stages = snapshot["stages"]
        for name in ("defrag", "checksum", "demux", "handler"):
            assert name in stages, stages
            assert stages[name]["calls"] >= 1
        shares = snapshot["shares"]
        assert "dispatch_other" in shares
        assert all(value >= 0 for value in shares.values())

    def test_stages_not_counted_when_disabled(self):
        STAGES.reset()
        sim, net, a, b = make_net()
        b.bind(53)
        a.bind(4000).sendto(b"hello", "10.0.0.2", 53)
        sim.run()
        times, _calls = STAGES.merged()
        assert "checksum" not in times
        STAGES.reset()

    def test_reset_keeps_hosts_built_before_it_attached(self):
        """STAGES.reset() after topology construction must not orphan the
        already-compiled datapaths: their stages still reach snapshots."""
        sim, net, a, b = make_net()
        b.bind(53, lambda payload, ip, port: None)
        STAGES.reset()  # after hosts exist — the manual-use flow
        STAGES.enable()
        try:
            a.bind(4000).sendto(b"hello", "10.0.0.2", 53)
            sim.run()
            snapshot = STAGES.snapshot(wall_time=1.0)
        finally:
            STAGES.disable()
            STAGES.reset()
        assert "checksum" in snapshot["stages"], snapshot["stages"]

    def test_mixed_profile_does_not_accumulate_while_disabled(self):
        STAGES.reset()
        sim, net, a, b = make_net()
        profile = LinkProfile("verify-only", verify_checksum=True, defrag_bookkeeping=False)
        net.set_link("10.0.0.1", "10.0.0.2", Link(latency=0.01, profile=profile))
        received = []
        b.bind(53, lambda payload, ip, port: received.append(payload))
        a.bind(4000).sendto(b"x", "10.0.0.2", 53)
        sim.run()
        assert received == [b"x"]
        times, _ = STAGES.merged()
        assert "checksum" not in times  # collection was off the whole time
        STAGES.reset()

    def test_stage_attribution_survives_gc_before_snapshot(self):
        """Host/datapath pairs are reference cycles; a cyclic-GC pass
        between simulation teardown and snapshot() must not drop the
        pipeline stage counters (STAGES pins sources while enabled)."""
        import gc

        STAGES.reset()
        STAGES.enable()
        try:
            def run_and_discard():
                sim, net, a, b = make_net()
                b.bind(53, lambda payload, ip, port: None)
                a.bind(4000).sendto(b"hello", "10.0.0.2", 53)
                sim.run()

            run_and_discard()
            gc.collect()  # the world is garbage now; attribution must not be
            snapshot = STAGES.snapshot(wall_time=1.0)
        finally:
            STAGES.disable()
            STAGES.reset()
        assert "checksum" in snapshot["stages"], snapshot["stages"]
        assert "handler" in snapshot["stages"]

    def test_instrumented_run_matches_uninstrumented_counters(self):
        def run(enable):
            STAGES.reset()
            if enable:
                STAGES.enable()
            try:
                sim, net, a, b = make_net()
                received = []
                b.bind(53, lambda payload, ip, port: received.append(payload))
                for index in range(10):
                    a.bind(0).sendto(b"x" * index, "10.0.0.2", 53)
                net.inject(corrupted_packet("10.0.0.1", "10.0.0.2"))
                sim.run()
                return received, b.stats.udp_received, b.stats.udp_checksum_failures
            finally:
                STAGES.disable()
                STAGES.reset()

        assert run(False) == run(True)
