"""Tests for ones'-complement checksum arithmetic."""

from repro.netsim.checksum import (
    add_ones_complement,
    fold_carries,
    internet_checksum,
    ones_complement_sum,
    sub_ones_complement,
    verify_checksum,
)


class TestOnesComplementSum:
    def test_empty(self):
        assert ones_complement_sum(b"") == 0

    def test_single_word(self):
        assert ones_complement_sum(b"\x12\x34") == 0x1234

    def test_odd_length_pads_with_zero(self):
        assert ones_complement_sum(b"\x12") == 0x1200

    def test_carry_folding(self):
        # 0xFFFF + 0x0001 wraps to 0x0001 in ones'-complement arithmetic.
        assert ones_complement_sum(b"\xff\xff\x00\x01") == 0x0001

    def test_fold_carries_idempotent(self):
        assert fold_carries(0x1FFFE) == 0xFFFF
        assert fold_carries(0x0001) == 0x0001


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # Example adapted from RFC 1071 section 3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_verify_round_trip(self):
        data = b"hello world checksum"
        checksum = internet_checksum(data)
        assert verify_checksum(data + checksum.to_bytes(2, "big"))

    def test_verify_detects_corruption(self):
        data = b"hello world checksum"
        checksum = internet_checksum(data)
        corrupted = b"hello worle checksum" + checksum.to_bytes(2, "big")
        assert not verify_checksum(corrupted)


class TestOnesComplementArithmetic:
    def test_add(self):
        assert add_ones_complement(0xFFFF, 0x0001) == 0x0001

    def test_subtract_inverse_of_add(self):
        total = add_ones_complement(0x1234, 0x4321)
        assert sub_ones_complement(total, 0x4321) in (0x1234, 0x1233)

    def test_subtracting_correction_equalises_sums(self):
        original = b"\x01\x02\x03\x04\x05\x06"
        modified = b"\xaa\xbb\x03\x04\x05\x06"
        diff = sub_ones_complement(
            ones_complement_sum(modified), ones_complement_sum(original)
        )
        word = (modified[2] << 8) | modified[3]
        adjusted = sub_ones_complement(word, diff)
        patched = modified[:2] + adjusted.to_bytes(2, "big") + modified[4:]
        assert ones_complement_sum(patched) == ones_complement_sum(original)
