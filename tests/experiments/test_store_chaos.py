"""Crash-injection harness: kill -9 mid-sweep, then fsck + resume.

The acceptance property for the durable store: a sweep driver killed with
``SIGKILL`` mid-write leaves a store that passes ``fsck``, and
``resume_stored()`` replays to results bit-identical to an uninterrupted
run.  A worker killed with ``SIGKILL`` mid-sweep no longer serialises the
remaining chunks — the probation tier re-runs the suspect in isolation
while the respawned main pool keeps draining at full width.

Runs under ``make chaos`` (and the full tier-1 suite).  Worker-killing
tests rely on the ``fork`` start method, like the rest of the resilience
suite.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments import ExperimentRunner, RunSpec, RunStore, scenario

pytestmark = pytest.mark.chaos

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

#: Deterministic pure scenario shared by the killed child process and the
#: resuming parent — results must match bit-for-bit across both.
_SLOW_SCENARIO = '''
import time
from repro.experiments.scenarios import scenario

@scenario("_chaos_store_slow")
def _chaos_store_slow(x: int = 0) -> dict:
    time.sleep(0.05)
    return {"x": x, "sq": x * x, "digest": (x * 2654435761) % 2**32}
'''


@scenario("_chaos_store_slow")
def _chaos_store_slow(x: int = 0) -> dict:
    time.sleep(0.05)
    return {"x": x, "sq": x * x, "digest": (x * 2654435761) % 2**32}


@scenario("_chaos_kill9_worker")
def _chaos_kill9_worker() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


@scenario("_chaos_sleep")
def _chaos_sleep(seconds: float = 0.6, x: int = 0) -> int:
    time.sleep(seconds)
    return x


def _specs(n: int = 30) -> list[RunSpec]:
    return [RunSpec.make("_chaos_store_slow", x=i) for i in range(n)]


def _outcome_key(outcome) -> tuple:
    return (outcome.spec, outcome.result, outcome.error, outcome.error_kind)


def _count_records(store: RunStore, sweep_id: str) -> int:
    try:
        return len(store.records(sweep_id))
    except Exception:
        return 0


class TestDriverSigkill:
    """kill -9 the sweep driver mid-write; fsck passes, resume is identical."""

    @pytest.mark.parametrize("kill_after", [1, 5])
    def test_sigkilled_sweep_fscks_and_resumes_bit_identical(
        self, tmp_path, kill_after
    ):
        root = str(tmp_path / "store")
        child_source = _SLOW_SCENARIO + (
            """
import sys
from repro.experiments import ExperimentRunner, RunSpec, RunStore

root = sys.argv[1]
specs = [RunSpec.make("_chaos_store_slow", x=i) for i in range(30)]
runner = ExperimentRunner(max_workers=1)
runner.run_stored(RunStore(root), "chaos", specs, sweep_id="kill")
"""
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-c", child_source, root],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            store = RunStore(root)
            deadline = time.monotonic() + 30.0
            while _count_records(store, "kill") < kill_after:
                if child.poll() is not None:
                    pytest.fail("sweep finished before the kill landed")
                if time.monotonic() > deadline:
                    pytest.fail("sweep never produced records to kill over")
                time.sleep(0.01)
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        # Simulate the torn in-flight line the kill can leave behind.
        segment = store._segment_paths("kill")[-1]
        with open(segment, "ab") as handle:
            handle.write(b'{"index": 99, "spec": {"scenario": "_chaos')

        report = store.fsck()
        assert report.ok, report.errors
        assert store.manifest("kill")["status"] == "running"
        recorded = _count_records(store, "kill")
        assert kill_after <= recorded < 30

        runner = ExperimentRunner(max_workers=1)
        resumed = runner.resume_stored(store, "kill")

        uninterrupted = ExperimentRunner(max_workers=1).run_stored(
            RunStore(str(tmp_path / "reference")), "chaos", _specs(), sweep_id="kill"
        )
        assert [_outcome_key(o) for o in resumed] == [
            _outcome_key(o) for o in uninterrupted
        ]
        assert store.manifest("kill")["status"] == "complete"
        assert store.fsck().ok
        # repair mode clears the torn line; the store then loads clean
        store.fsck(repair=True)
        assert store.fsck().repaired == []


class TestWorkerSigkill:
    """kill -9 a worker mid-sweep; probation re-parallelises the drain."""

    def test_worker_kill_does_not_serialise_sweep(self):
        specs = [RunSpec.make("_chaos_kill9_worker")] + [
            RunSpec.make("_chaos_sleep", seconds=0.6, x=i) for i in range(8)
        ]
        runner = ExperimentRunner(max_workers=4, chunk_size=1, retry=None)
        start = time.monotonic()
        outcomes = runner.run(specs)
        elapsed = time.monotonic() - start

        assert outcomes[0].error_kind == "worker-crash"
        assert all(o.ok for o in outcomes[1:])
        assert [o.result for o in outcomes[1:]] == list(range(8))
        # the probation tier kept the sweep parallel after the crash:
        # innocents and fresh chunks ran concurrently, not one-by-one
        assert runner.last_recovery["max_parallel_after_crash"] >= 3
        assert runner.last_recovery["probation_runs"] >= 1
        assert runner.last_recovery["worker_crashes"] >= 1
        # eight 0.6s sleeps executed serially would need ~4.8s wall
        assert elapsed < 4.0, (
            f"sweep took {elapsed:.2f}s — the post-crash drain went serial"
        )

    def test_worker_kill_in_stored_sweep_is_durable(self, tmp_path):
        store = RunStore(str(tmp_path))
        specs = [RunSpec.make("_chaos_kill9_worker")] + [
            RunSpec.make("_chaos_sleep", seconds=0.05, x=i) for i in range(4)
        ]
        runner = ExperimentRunner(max_workers=2, chunk_size=1, retry=None)
        outcomes = runner.run_stored(store, "chaos", specs, sweep_id="w")
        assert outcomes[0].error_kind == "worker-crash"
        assert store.fsck().ok
        done = store.load_outcomes("w")
        assert done[0].error_kind == "worker-crash"
        assert sorted(done) == [0, 1, 2, 3, 4]
