#!/usr/bin/env python
"""Guard against throughput regressions versus the committed bench JSON.

Compares headline throughput metrics of a fresh benchmark run against the
committed ``BENCH_netsim.json`` baseline and exits non-zero when any metric
regressed by more than the threshold (default 20%).  Metrics present in only
one of the two documents are reported but never fail the check, so adding or
renaming bench fields does not break the gate.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py
        [--baseline PATH] [--threshold 0.2] [--rounds N] [--allow-missing]

A missing baseline is a typed, actionable error (exit code 2) unless
``--allow-missing`` is passed for fresh checkouts; a baseline whose schema
does not match :data:`EXPECTED_SCHEMA` always is.  Scheduler-noise-prone
microbenchmarks carry individual :data:`NOISE_BANDS` wider than the default
threshold so run-to-run wobble does not read as a regression.

``run_benchmarks.py`` wires this in automatically: after refreshing the JSON
it diffs the new document against the previously committed one and fails the
benchmark run on regression (``--no-check`` to skip).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

#: Headline higher-is-better metrics, as key paths into the bench document.
THROUGHPUT_METRICS: tuple[tuple[str, ...], ...] = (
    ("microbenchmarks", "packets_per_sec"),
    ("microbenchmarks", "pipeline_events_per_sec"),
    ("microbenchmarks", "pipeline_trusted_events_per_sec"),
    ("microbenchmarks", "dns_encode_ops_per_sec"),
    ("microbenchmarks", "dns_decode_ops_per_sec"),
    ("microbenchmarks", "dns_decode_cold_ops_per_sec"),
    ("microbenchmarks", "ntp_encode_ops_per_sec"),
    ("microbenchmarks", "ntp_decode_ops_per_sec"),
    ("microbenchmarks", "event_loop", "delivery", "fast_events_per_sec"),
    ("microbenchmarks", "event_loop", "schedule_drain", "fast_events_per_sec"),
    ("microbenchmarks", "event_loop", "timer_chain", "fast_events_per_sec"),
    ("microbenchmarks", "burst_events_per_sec"),
    ("microbenchmarks", "limiter_burst_ops_per_sec"),
    ("experiments", "table2_ntpd_p1", "result", "events_per_wall_second"),
    ("experiments", "table2_ntpd_p1_trusted", "result", "events_per_wall_second"),
)

#: Default tolerated fractional slowdown per metric.
DEFAULT_THRESHOLD = 0.20

#: Per-metric noise bands (dotted metric name → tolerated fractional
#: slowdown), overriding the global threshold.  The sub-millisecond
#: event-loop and rate-limiter microbenches are dominated by OS scheduling
#: jitter and CPU frequency state, so they wobble far more run-to-run than
#: the long pipeline and end-to-end measurements; giving them a wider band
#: keeps the gate sensitive where measurements are stable without turning
#: scheduler noise into false regressions.  ``--threshold`` only moves
#: metrics NOT listed here.
NOISE_BANDS: dict[str, float] = {
    "microbenchmarks.event_loop.delivery.fast_events_per_sec": 0.30,
    "microbenchmarks.event_loop.schedule_drain.fast_events_per_sec": 0.30,
    "microbenchmarks.event_loop.timer_chain.fast_events_per_sec": 0.30,
    "microbenchmarks.limiter_burst_ops_per_sec": 0.30,
    "microbenchmarks.dns_decode_cold_ops_per_sec": 0.30,
}

#: The bench document schema this checker understands (see
#: ``repro.experiments.runner.write_bench_json``).
EXPECTED_SCHEMA = "repro-bench/1"


class BaselineError(RuntimeError):
    """The committed benchmark baseline cannot be used for comparison."""


class BaselineMissingError(BaselineError):
    """No baseline file exists at the expected path."""


class BaselineSchemaError(BaselineError):
    """The baseline file exists but is not a bench document we understand."""


def load_baseline(path: str) -> dict[str, Any]:
    """Load and validate the committed baseline, raising typed errors.

    * :class:`BaselineMissingError` when the file does not exist, and
    * :class:`BaselineSchemaError` when it is not JSON, not an object,
      declares a schema other than :data:`EXPECTED_SCHEMA`, or carries
      none of the sections the metric paths point into.
    """
    if not os.path.exists(path):
        raise BaselineMissingError(
            f"no benchmark baseline at {path} — run `make bench-refresh` to "
            "create one, or pass --allow-missing to skip the comparison"
        )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise BaselineSchemaError(
            f"baseline {path} is not valid JSON ({exc}); regenerate it with "
            "`make bench-refresh`"
        ) from exc
    if not isinstance(document, dict):
        raise BaselineSchemaError(
            f"baseline {path} is {type(document).__name__}, expected a JSON "
            "object; regenerate it with `make bench-refresh`"
        )
    found_schema = document.get("schema")
    if found_schema != EXPECTED_SCHEMA:
        raise BaselineSchemaError(
            f"baseline {path} declares schema {found_schema!r}, this checker "
            f"understands {EXPECTED_SCHEMA!r}; regenerate it with "
            "`make bench-refresh`"
        )
    if "microbenchmarks" not in document and "experiments" not in document:
        raise BaselineSchemaError(
            f"baseline {path} has neither a 'microbenchmarks' nor an "
            "'experiments' section — nothing the metric paths can compare; "
            "regenerate it with `make bench-refresh`"
        )
    return document


def extract(document: dict[str, Any], path: tuple[str, ...]) -> Optional[float]:
    """Walk ``path`` into ``document``; None when any key is missing."""
    node: Any = document
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def compare(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """Diff the two documents; returns ``(regressions, notes)``.

    A regression is a metric whose fresh value is more than its noise band
    below the baseline — :data:`NOISE_BANDS` for the scheduler-sensitive
    microbenches, ``threshold`` for everything else.  Notes cover skipped
    metrics and improvements.
    """
    regressions: list[str] = []
    notes: list[str] = []
    for path in THROUGHPUT_METRICS:
        name = ".".join(path)
        band = NOISE_BANDS.get(name, threshold)
        old = extract(baseline, path)
        new = extract(fresh, path)
        if old is None or new is None or old <= 0:
            notes.append(f"skipped {name} (missing in baseline or fresh run)")
            continue
        change = (new - old) / old
        if change < -band:
            regressions.append(
                f"{name}: {old:,.0f} -> {new:,.0f} ({change:+.1%}, "
                f"noise band -{band:.0%})"
            )
        else:
            notes.append(f"{name}: {old:,.0f} -> {new:,.0f} ({change:+.1%})")
    return regressions, notes


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "BENCH_netsim.json"),
        help="committed benchmark JSON to compare against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="tolerated fractional slowdown per metric (default 0.2)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="best-of rounds for the fresh run"
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="exit 0 when no baseline exists (fresh checkouts / first run)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_baseline(args.baseline)
    except BaselineMissingError as exc:
        if args.allow_missing:
            print(f"{exc}; nothing to compare")
            return 0
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BaselineSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from bench_micro_netsim import run_micro_benchmarks
    from run_benchmarks import refine_timing, run_end_to_end, run_trusted_fabric

    print(f"running fresh benchmarks (best of {args.rounds})...", flush=True)
    # End-to-end first, microbenchmarks second — same order as
    # run_benchmarks.py, so fresh and committed numbers are measured under
    # the same in-process conditions.  The end-to-end timings are
    # re-sampled after the micro suite (refine_timing) so one
    # host-scheduling stall cannot read as a false regression.
    end_to_end = run_end_to_end(max_workers=1)
    trusted = run_trusted_fabric(1)
    micro = run_micro_benchmarks(rounds=args.rounds)
    refine_timing(end_to_end, "table2_runtime_attack", 1)
    refine_timing(trusted, "table2_trusted_fabric", 1)
    fresh = {
        "experiments": {
            "table2_ntpd_p1": end_to_end,
            "table2_ntpd_p1_trusted": trusted,
        },
        "microbenchmarks": micro,
    }
    regressions, notes = compare(baseline, fresh, threshold=args.threshold)
    for note in notes:
        print(f"  ok: {note}")
    for regression in regressions:
        print(f"  REGRESSION: {regression}")
    if regressions:
        print(f"{len(regressions)} metric(s) regressed beyond {args.threshold:.0%}")
        return 1
    print("no throughput regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
