"""Per-stage wall-time counters for the wire-layer hot paths.

The experiment engine and benchmarks need to know *where* an end-to-end run
spends its time — decode, encode, or everything else (event dispatch, attack
logic, checksums) — so each PR can aim at the actual bottleneck instead of
guessing.  Timing every packet unconditionally would slow the hot path it is
supposed to measure, so the counters are **off by default**: codec entry
points check a single attribute (``STAGES.enabled``) and skip both
``perf_counter`` calls when disabled.

Enable collection either directly (``STAGES.enable()``) or through
:class:`repro.experiments.runner.ExperimentRunner` with
``collect_stage_stats=True``, which also propagates the setting to worker
processes via the ``REPRO_STAGE_STATS`` environment variable and attaches a
:meth:`StageCounters.snapshot` to each run outcome.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Optional

#: Environment variable the experiment engine uses to switch collection on in
#: worker processes (anything non-empty enables it).
STAGE_STATS_ENV = "REPRO_STAGE_STATS"

#: Stage names grouped into the two aggregate buckets reported as shares.
DECODE_STAGES = ("dns_decode", "ntp_decode")
ENCODE_STAGES = ("dns_encode", "ntp_encode")


def stage_shares(
    decode_seconds: float, encode_seconds: float, wall_time: float
) -> dict[str, Any]:
    """The wall-time attribution block shared by snapshots and summaries.

    ``dispatch_other`` is the remainder: event dispatch, checksums,
    scheduling and scenario logic.
    """
    return {
        "decode_seconds": round(decode_seconds, 6),
        "encode_seconds": round(encode_seconds, 6),
        "wall_time_seconds": round(wall_time, 6),
        "shares": {
            "decode": round(decode_seconds / wall_time, 4) if wall_time else 0.0,
            "encode": round(encode_seconds / wall_time, 4) if wall_time else 0.0,
            "dispatch_other": round(
                max(0.0, 1.0 - (decode_seconds + encode_seconds) / wall_time), 4
            )
            if wall_time
            else 0.0,
        },
    }


class StageCounters:
    """Accumulates wall time and call counts per named stage.

    ``add`` is called from codec hot paths only while ``enabled`` is true, so
    the disabled cost is one attribute read per codec call.
    """

    __slots__ = ("enabled", "times", "calls")

    def __init__(self) -> None:
        self.enabled = False
        self.times: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def enable(self) -> None:
        """Switch collection on (counters keep accumulating until reset)."""
        self.enabled = True

    def disable(self) -> None:
        """Switch collection off; accumulated values remain readable."""
        self.enabled = False

    def reset(self) -> None:
        """Zero all counters (collection state is unchanged)."""
        self.times.clear()
        self.calls.clear()

    def add(self, stage: str, elapsed: float) -> None:
        """Record one timed call of ``stage``."""
        self.times[stage] = self.times.get(stage, 0.0) + elapsed
        self.calls[stage] = self.calls.get(stage, 0) + 1

    # ------------------------------------------------------------- reporting
    def snapshot(self, wall_time: Optional[float] = None) -> dict[str, Any]:
        """A JSON-ready summary of the counters.

        With ``wall_time`` (seconds of the run being attributed), the
        snapshot also reports each aggregate bucket's share of the wall
        clock; the remainder is the ``dispatch_other`` share — event-loop
        dispatch, checksums, scheduling, and scenario logic.
        """
        decode = sum(self.times.get(stage, 0.0) for stage in DECODE_STAGES)
        encode = sum(self.times.get(stage, 0.0) for stage in ENCODE_STAGES)
        document: dict[str, Any] = {
            "stages": {
                stage: {
                    "seconds": round(self.times[stage], 6),
                    "calls": self.calls.get(stage, 0),
                }
                for stage in sorted(self.times)
            },
            "decode_seconds": round(decode, 6),
            "encode_seconds": round(encode, 6),
        }
        if wall_time is not None and wall_time > 0:
            attribution = stage_shares(decode, encode, wall_time)
            document["wall_time_seconds"] = attribution["wall_time_seconds"]
            document["shares"] = attribution["shares"]
        return document


#: The process-wide counter instance the codecs consult.
STAGES = StageCounters()

#: Re-exported so codec modules need a single import for the guarded pattern:
#: ``if STAGES.enabled: t0 = perf_counter(); ...; STAGES.add(name, perf_counter() - t0)``.
__all__ = ["STAGES", "StageCounters", "STAGE_STATS_ENV", "perf_counter"]
