"""Table V — results of the client resolver study using ads.

Runs the ad-network methodology (seven image-load tests per client, validity
filtering, aggregation by region/device and the "without Google" row) against
the synthetic web-client population and reproduces the fragment-acceptance
and DNSSEC-validation figures.
"""

from __future__ import annotations

from repro.measurement.ad_network import AdNetworkStudy
from repro.measurement.population import (
    PAPER_AD_REGIONS,
    PAPER_DNSSEC_VALIDATION_RANGE,
    generate_web_clients,
)
from repro.measurement.report import format_percentage, format_table

GROUPS = [
    "Asia",
    "Africa",
    "Europe",
    "Northern America",
    "Latin America",
    "ALL",
    "Without Google",
    "PC",
    "Mobile,Tablet",
]


def run_study():
    return AdNetworkStudy(generate_web_clients()).run()


def test_table5_ad_network_study(run_once):
    report = run_once(run_study)
    print()
    rows = []
    for group in GROUPS:
        row = report.row(group)
        paper = PAPER_AD_REGIONS.get(group)
        rows.append(
            [
                group,
                format_percentage(row.tiny_fraction, 1),
                format_percentage(row.any_fraction, 1),
                format_percentage(row.dnssec_fraction, 1),
                row.total,
                "" if paper is None else f"{paper[1]*100:.1f}% / {paper[2]*100:.1f}%",
            ]
        )
    print(
        format_table(
            ["Group", "Accepts 68 B", "Accepts any", "Validates DNSSEC", "Total", "Paper (tiny/any)"],
            rows,
            title="Table V — ad-network client resolver study",
        )
    )
    for region, (count, tiny, any_) in PAPER_AD_REGIONS.items():
        row = report.row(region)
        assert abs(row.tiny_fraction - tiny) < 0.12
        assert abs(row.any_fraction - any_) < 0.08
    all_row = report.row("ALL")
    assert 0.55 <= all_row.tiny_fraction <= 0.72          # paper: 64 %
    assert 0.82 <= all_row.any_fraction <= 0.95           # paper: 91 %
    assert report.row("Without Google").tiny_fraction > all_row.tiny_fraction
    low, high = report.dnssec_validation_range()
    assert PAPER_DNSSEC_VALIDATION_RANGE[0] - 0.06 <= low
    assert high <= PAPER_DNSSEC_VALIDATION_RANGE[1] + 0.06
