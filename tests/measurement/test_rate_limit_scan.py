"""Tests for the pool rate-limiting scan (section VII-A)."""

from repro.measurement.rate_limit_scan import RateLimitScan
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.ntp.pool import build_pool_population


def run_scan(size=40, rate_limit_fraction=0.38, kod_fraction=0.33, seed=17, **scan_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim)
    pool = build_pool_population(
        sim,
        net,
        size=size,
        rate_limit_fraction=rate_limit_fraction,
        kod_fraction=kod_fraction,
    )
    scanner_host = net.add_host("scanner", "198.18.0.10")
    scan = RateLimitScan(scanner_host, sim, pool.addresses, **scan_kwargs)
    report = scan.run()
    return pool, report


class TestClassification:
    def test_all_limiting_population_detected(self):
        pool, report = run_scan(size=12, rate_limit_fraction=1.0, kod_fraction=1.0)
        assert report.servers_scanned == 12
        assert report.rate_limiting_fraction == 1.0
        assert report.kod_fraction == 1.0

    def test_no_limiting_population_detected(self):
        pool, report = run_scan(size=12, rate_limit_fraction=0.0, kod_fraction=0.0)
        assert report.rate_limiting_fraction == 0.0
        assert report.kod_fraction == 0.0
        # Non-limiting servers answer (nearly) every probe.
        assert all(r.total_responses >= 60 for r in report.results)

    def test_mixed_population_matches_ground_truth(self):
        pool, report = run_scan(size=60, rate_limit_fraction=0.4, kod_fraction=0.3)
        truth = {spec.address: spec.rate_limiting for spec in pool.specs}
        for result in report.results:
            assert result.rate_limiting == truth[result.server_ip]

    def test_kod_detection_matches_ground_truth(self):
        pool, report = run_scan(size=60, rate_limit_fraction=0.5, kod_fraction=0.4)
        truth = {spec.address: spec.sends_kod for spec in pool.specs}
        for result in report.results:
            assert result.kod_received == truth[result.server_ip]

    def test_first_half_second_half_signature(self):
        pool, report = run_scan(size=8, rate_limit_fraction=1.0, kod_fraction=0.0)
        for result in report.results:
            assert result.responses_first_half > result.responses_second_half
            assert result.responses_second_half <= 2


class TestPaperScale:
    def test_default_fractions_reproduced_on_moderate_population(self):
        pool, report = run_scan(size=120)
        assert abs(report.rate_limiting_fraction - pool.rate_limiting_fraction()) < 0.03
        assert abs(report.kod_fraction - pool.kod_fraction()) < 0.03
        assert 0.3 < report.rate_limiting_fraction < 0.5
        assert 0.25 < report.kod_fraction < 0.42
