#!/usr/bin/env python
"""Benchmark entry point: microbenchmarks + one end-to-end scenario → JSON.

Runs the netsim microbenchmark suite (event-loop seed-vs-fast comparison,
packets/sec, DNS codec ops/sec) plus one end-to-end Table II scenario through
the experiment engine, then writes/updates ``BENCH_netsim.json`` at the
repository root so future PRs have a performance trajectory to compare
against.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--output PATH]
        [--rounds N] [--workers N] [--quick]

``--quick`` trims the round count for smoke runs (CI that only needs the
file refreshed, not tight numbers).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.experiments import ExperimentRunner, RunSpec, write_bench_json  # noqa: E402
from repro.experiments.runner import timings_summary  # noqa: E402

from bench_micro_netsim import run_micro_benchmarks  # noqa: E402
from check_regression import compare  # noqa: E402


def run_end_to_end(max_workers: int | None, timing_rounds: int = 3) -> dict:
    """One fixed-seed Table II cell (ntpd / P1) through the engine.

    Two phases, reported in one summary:

    * **timing** — ``timing_rounds`` uninstrumented runs; the headline
      ``events_per_wall_second`` is the best observed rate (noise-robust
      maximum, like the microbenchmarks), free of observer overhead.
    * **attribution** — one run with per-stage counters enabled, so the
      persisted summary carries ``stage_time_shares`` with the named
      delivery-pipeline stages (defrag / checksum / demux / handler) future
      PRs use to find the next bottleneck.

    Both phases run the identical fixed-seed scenario; stage collection
    never changes results, only adds wall time — which is exactly why the
    headline rate is taken from the uninstrumented runs.
    """
    spec = RunSpec.make("table2_runtime_attack", client="ntpd", attack="P1", seed=5)

    timing_runner = ExperimentRunner(max_workers=max_workers)
    timing_outcomes = [timing_runner.run([spec])[0] for _ in range(max(1, timing_rounds))]
    best = min(
        (o for o in timing_outcomes if o.ok),
        key=lambda o: o.wall_time,
        default=timing_outcomes[0],
    )

    stage_runner = ExperimentRunner(max_workers=max_workers, collect_stage_stats=True)
    staged = stage_runner.run([spec])
    summary = timings_summary(staged)
    summary["execution_mode"] = stage_runner.last_execution_mode
    summary["timing_rounds"] = len(timing_outcomes)
    outcome = staged[0]
    if outcome.ok and best.ok:
        summary["result"] = {
            "success": best.result["success"],
            "minutes": best.result["minutes"],
            "shift": best.result["shift"],
            "events_processed": best.result["events_processed"],
            "events_per_wall_second": round(
                best.result["events_processed"] / best.wall_time
            ),
        }
    else:
        summary["error"] = outcome.error or best.error
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_netsim.json"),
        help="where to write the benchmark JSON (default: repo root)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5, help="best-of rounds per microbenchmark"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="experiment engine worker count"
    )
    parser.add_argument(
        "--quick", action="store_true", help="single round per microbenchmark"
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the regression diff against the previously committed JSON",
    )
    parser.add_argument(
        "--check-threshold",
        type=float,
        default=0.2,
        help="tolerated fractional slowdown per metric (default 0.2)",
    )
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    rounds = 1 if args.quick else args.rounds

    baseline = None
    if not args.no_check and os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError):
            baseline = None

    # End-to-end first: its headline events/wall-sec is the acceptance
    # metric, and measuring it before the microbenchmark load keeps the
    # process (allocator, caches, CPU thermal state) comparable across
    # refreshes.
    print("running end-to-end scenario (Table II, ntpd/P1, seed 5)...", flush=True)
    end_to_end = run_end_to_end(args.workers)
    print(json.dumps(end_to_end, indent=2))

    print(f"running microbenchmarks (best of {rounds})...", flush=True)
    micro = run_micro_benchmarks(rounds=rounds)
    print(json.dumps(micro, indent=2))

    # Gate BEFORE overwriting: a failing run must leave the committed
    # baseline intact, otherwise an immediate rerun would compare the fresh
    # numbers against the regressed ones and silently pass.
    if baseline is not None:
        fresh = {
            "microbenchmarks": micro,
            "experiments": {"table2_ntpd_p1": end_to_end},
        }
        regressions, _notes = compare(baseline, fresh, threshold=args.check_threshold)
        for regression in regressions:
            print(f"REGRESSION: {regression}")
        if regressions:
            print(
                f"{len(regressions)} metric(s) regressed beyond "
                f"{args.check_threshold:.0%} of the committed baseline; "
                f"{args.output} left unchanged"
            )
            return 1
        print("regression check: ok (vs previously committed JSON)")

    document = write_bench_json(
        args.output,
        microbenchmarks=micro,
        experiments={"table2_ntpd_p1": end_to_end},
    )
    print(f"wrote {args.output}")
    speedup = document["microbenchmarks"]["event_loop"]["delivery"]["speedup"]
    print(f"event-loop delivery speedup vs seed: {speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
