"""Tests for IPID allocation policies."""

import numpy as np

from repro.netsim.ipid import GlobalCounterIPID, PerDestinationIPID, RandomIPID


class TestGlobalCounter:
    def test_increments_across_destinations(self):
        allocator = GlobalCounterIPID(start=10)
        assert allocator.next_ipid("1.1.1.1") == 10
        assert allocator.next_ipid("2.2.2.2") == 11
        assert allocator.next_ipid("3.3.3.3") == 12

    def test_wraps_at_16_bits(self):
        allocator = GlobalCounterIPID(start=0xFFFF)
        assert allocator.next_ipid("1.1.1.1") == 0xFFFF
        assert allocator.next_ipid("1.1.1.1") == 0

    def test_custom_increment(self):
        allocator = GlobalCounterIPID(start=0, increment=3)
        assert [allocator.next_ipid("x") for _ in range(3)] == [0, 3, 6]

    def test_is_predictable(self):
        assert GlobalCounterIPID().predictable

    def test_off_path_sampling_predicts_victim_value(self):
        """The attack's core assumption: sampling from one destination
        predicts the value used for another destination."""
        allocator = GlobalCounterIPID(start=100)
        observed = [allocator.next_ipid("attacker") for _ in range(3)]
        prediction = observed[-1] + 1
        assert allocator.next_ipid("victim-resolver") == prediction


class TestPerDestination:
    def test_separate_counters_per_destination(self):
        allocator = PerDestinationIPID(rng=np.random.default_rng(0))
        a_values = [allocator.next_ipid("a") for _ in range(3)]
        b_values = [allocator.next_ipid("b") for _ in range(3)]
        assert a_values[1] == (a_values[0] + 1) & 0xFFFF
        assert b_values[0] != a_values[0]

    def test_not_predictable(self):
        assert not PerDestinationIPID().predictable

    def test_sampling_one_destination_reveals_nothing_about_another(self):
        allocator = PerDestinationIPID(rng=np.random.default_rng(1))
        for _ in range(10):
            allocator.next_ipid("attacker")
        victim_value = allocator.next_ipid("victim")
        attacker_next = allocator.next_ipid("attacker")
        assert abs(victim_value - attacker_next) > 1  # independent streams


class TestRandom:
    def test_values_in_range(self):
        allocator = RandomIPID(rng=np.random.default_rng(2))
        values = [allocator.next_ipid("x") for _ in range(100)]
        assert all(0 <= v <= 0xFFFF for v in values)

    def test_not_predictable(self):
        assert not RandomIPID().predictable

    def test_values_are_spread_out(self):
        allocator = RandomIPID(rng=np.random.default_rng(3))
        values = [allocator.next_ipid("x") for _ in range(200)]
        assert len(set(values)) > 150
