"""Tests for the synthetic pool population."""

from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.ntp.pool import (
    PAPER_KOD_FRACTION,
    PAPER_POOL_SIZE,
    PAPER_RATE_LIMIT_FRACTION,
    build_pool_population,
    country_zone_names,
)


class TestPopulationGeneration:
    def build(self, size=200, **kwargs):
        sim = Simulator(seed=10)
        net = Network(sim)
        return build_pool_population(sim, net, size=size, **kwargs), sim, net

    def test_size_and_unique_addresses(self):
        population, _, _ = self.build(size=100)
        assert len(population.specs) == 100
        assert len(set(population.addresses)) == 100

    def test_default_fractions_match_paper(self):
        population, _, _ = self.build(size=400)
        assert abs(population.rate_limiting_fraction() - PAPER_RATE_LIMIT_FRACTION) < 0.02
        assert abs(population.kod_fraction() - PAPER_KOD_FRACTION) < 0.02

    def test_kod_servers_are_subset_of_rate_limiters(self):
        population, _, _ = self.build(size=300)
        for spec in population.specs:
            if spec.sends_kod:
                assert spec.rate_limiting

    def test_custom_rate_limit_fraction(self):
        population, _, _ = self.build(size=200, rate_limit_fraction=1.0, kod_fraction=1.0)
        assert population.rate_limiting_fraction() == 1.0

    def test_servers_instantiated_with_matching_config(self):
        population, _, _ = self.build(size=50)
        for spec in population.specs:
            server = population.servers[spec.address]
            assert server.config.rate_limiting == spec.rate_limiting
            assert server.config.send_kod == spec.sends_kod

    def test_specs_only_mode(self):
        population, _, net = self.build(size=50, instantiate_servers=False)
        assert population.servers == {}
        assert len(net.hosts()) == 0

    def test_spec_lookup(self):
        population, _, _ = self.build(size=10)
        spec = population.spec_for(population.addresses[3])
        assert spec is not None and spec.address == population.addresses[3]
        assert population.spec_for("9.9.9.9") is None

    def test_open_config_fraction(self):
        population, _, _ = self.build(size=1000)
        assert 0.03 < population.open_config_fraction() < 0.08

    def test_paper_pool_size_constant(self):
        assert PAPER_POOL_SIZE == 2432


class TestCountryZones:
    def test_country_zone_names(self):
        names = country_zone_names()
        assert "de.pool.ntp.org" in names
        assert all(name.endswith("pool.ntp.org") for name in names)
