"""The boot-time attack (paper section IV-A, Figure 2).

At boot an NTP client has no associations: whatever addresses its very first
DNS lookup returns become its time sources, and every client implementation
steps its clock from the first samples because the local clock may
legitimately be far off after a cold start.  The attack therefore reduces to
getting the malicious record into the resolver's cache *before* the client
boots (or before its next scheduled invocation, for cron-driven ntpdate).

Three ways of lining up the poisoning with the query are modelled:

* ``periodic-planting`` — keep a spoofed fragment parked in the resolver's
  defragmentation cache, refreshing it every 30 s, until the client's query
  happens to arrive (the paper's low-volume default: at most
  ``150 s / 30 s = 5`` fragments per TTL window),
* ``trigger-via-open-resolver`` — make the resolver issue the query itself
  (any system sharing the resolver can be used; here the resolver is open),
* ``predicted-query`` — the experiment supplies the boot time, standing in
  for side-channel prediction of the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.attacker import Attacker
from repro.core.fragment_attack import DNSFragmentPoisoner, PoisoningOutcome, PoisoningPlan
from repro.dns.resolver import RecursiveResolver
from repro.netsim.simulator import Simulator
from repro.ntp.clients.base import BaseNTPClient


@dataclass
class BootTimeAttackResult:
    """Outcome of one boot-time attack experiment."""

    poisoned: bool
    client_used_attacker_server: bool
    clock_shift_achieved: float
    target_shift: float
    poisoning_outcome: Optional[PoisoningOutcome] = None
    time_to_shift: Optional[float] = None

    @property
    def success(self) -> bool:
        """The attack counts as successful when the clock moved to the target."""
        return (
            self.client_used_attacker_server
            and abs(self.clock_shift_achieved - self.target_shift)
            <= max(1.0, abs(self.target_shift) * 0.1)
        )


@dataclass
class BootTimeAttack:
    """Orchestrates a boot-time attack against one client behind one resolver."""

    attacker: Attacker
    simulator: Simulator
    resolver: RecursiveResolver
    nameserver_ip: str
    qname: str = "pool.ntp.org"
    target_mtu: int = 68
    trigger_via_open_resolver: bool = False
    poisoning_plan_overrides: dict = field(default_factory=dict)
    _poisoner: Optional[DNSFragmentPoisoner] = None
    _outcome: Optional[PoisoningOutcome] = None

    def launch_poisoning(self) -> DNSFragmentPoisoner:
        """Start the poisoning campaign against the resolver."""
        plan = PoisoningPlan(
            resolver_ip=self.resolver.ip,
            nameserver_ip=self.nameserver_ip,
            qname=self.qname,
            malicious_addresses=self.attacker.redirect_addresses(4),
            target_mtu=self.target_mtu,
            **self.poisoning_plan_overrides,
        )
        self._poisoner = DNSFragmentPoisoner(
            self.attacker,
            self.simulator,
            plan,
            success_check=lambda: self.resolver.is_poisoned(
                self.qname, self.attacker.controlled_addresses
            ),
            on_finished=self._record_outcome,
        )
        self._poisoner.start()
        if self.trigger_via_open_resolver:
            # Give the poisoner a head start to plant its first fragment,
            # then cause the resolver to fetch the record.
            self.simulator.schedule(
                45.0, self._poisoner.trigger_query_via_open_resolver, label="trigger-query"
            )
        return self._poisoner

    def _record_outcome(self, outcome: PoisoningOutcome) -> None:
        self._outcome = outcome

    def evaluate(self, client: BaseNTPClient, observation_period: float = 600.0) -> BootTimeAttackResult:
        """Boot ``client`` now and measure whether it adopts the shifted time.

        The caller is responsible for having run the poisoning first (or for
        scheduling the boot during the campaign); this method only boots the
        client, runs the simulation forward and reports the ground truth.
        """
        target_shift = self.attacker.resources.time_shift
        client.start()
        self.simulator.run_for(observation_period)
        if self._poisoner is not None and not self._poisoner.finished:
            self._poisoner.stop()
        used_attacker = any(
            ip in self.attacker.controlled_addresses for ip in client.usable_server_ips()
        )
        shift = client.clock_error()
        time_to_shift = None
        step_times = [a.true_time for a in client.clock.adjustments if a.stepped]
        if step_times:
            time_to_shift = step_times[0] - (client.booted_at or 0.0)
        return BootTimeAttackResult(
            poisoned=self.resolver.is_poisoned(self.qname, self.attacker.controlled_addresses)
            or used_attacker,
            client_used_attacker_server=used_attacker,
            clock_shift_achieved=shift,
            target_shift=target_shift,
            poisoning_outcome=self._outcome,
            time_to_shift=time_to_shift,
        )
