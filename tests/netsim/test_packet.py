"""Tests for IPv4 packet encoding and fragment semantics."""

import pytest

from repro.netsim.errors import PacketError
from repro.netsim.packet import IPProtocol, IPv4Packet, IPV4_HEADER_LEN


def make_packet(**overrides) -> IPv4Packet:
    defaults = dict(
        src="10.0.0.1",
        dst="10.0.0.2",
        protocol=IPProtocol.UDP,
        payload=b"payload-bytes",
        ipid=0x1234,
    )
    defaults.update(overrides)
    return IPv4Packet(**defaults)


class TestConstruction:
    def test_total_length_includes_header(self):
        packet = make_packet(payload=b"x" * 100)
        assert packet.total_length == 100 + IPV4_HEADER_LEN

    def test_rejects_bad_ipid(self):
        with pytest.raises(PacketError):
            make_packet(ipid=0x10000)

    def test_rejects_bad_fragment_offset(self):
        with pytest.raises(PacketError):
            make_packet(fragment_offset=0x2000)

    def test_rejects_oversized_payload(self):
        with pytest.raises(PacketError):
            make_packet(payload=b"x" * 65536)


class TestFragmentProperties:
    def test_plain_packet_is_not_a_fragment(self):
        assert not make_packet().is_fragment

    def test_first_fragment(self):
        packet = make_packet(more_fragments=True, fragment_offset=0)
        assert packet.is_fragment and packet.is_first_fragment
        assert not packet.is_last_fragment

    def test_last_fragment(self):
        packet = make_packet(more_fragments=False, fragment_offset=6)
        assert packet.is_fragment and packet.is_last_fragment
        assert not packet.is_first_fragment

    def test_fragment_key_groups_by_src_dst_proto_ipid(self):
        a = make_packet(fragment_offset=0, more_fragments=True)
        b = make_packet(fragment_offset=6)
        assert a.fragment_key == b.fragment_key
        assert a.fragment_key != make_packet(ipid=0x9999).fragment_key

    def test_copy_preserves_but_does_not_share_metadata(self):
        packet = make_packet()
        packet.metadata["spoofed"] = True
        copy = packet.copy(payload=b"different")
        assert copy.metadata["spoofed"]
        copy.metadata["other"] = 1
        assert "other" not in packet.metadata


class TestWireFormat:
    def test_encode_decode_round_trip(self):
        packet = make_packet(
            payload=b"\x01\x02\x03\x04 some payload",
            ttl=17,
            more_fragments=True,
            fragment_offset=42,
            dont_fragment=False,
        )
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.src == packet.src
        assert decoded.dst == packet.dst
        assert decoded.protocol is packet.protocol
        assert decoded.payload == packet.payload
        assert decoded.ipid == packet.ipid
        assert decoded.ttl == packet.ttl
        assert decoded.more_fragments == packet.more_fragments
        assert decoded.fragment_offset == packet.fragment_offset

    def test_encode_produces_20_byte_header(self):
        packet = make_packet(payload=b"abc")
        assert len(packet.encode()) == IPV4_HEADER_LEN + 3

    def test_df_flag_round_trip(self):
        packet = make_packet(dont_fragment=True)
        assert IPv4Packet.decode(packet.encode()).dont_fragment

    def test_decode_rejects_truncated_header(self):
        with pytest.raises(PacketError):
            IPv4Packet.decode(b"\x45\x00\x00")

    def test_decode_rejects_length_mismatch(self):
        data = make_packet(payload=b"abcdef").encode()
        with pytest.raises(PacketError):
            IPv4Packet.decode(data[:-2])

    def test_decode_rejects_wrong_version(self):
        data = bytearray(make_packet().encode())
        data[0] = (6 << 4) | 5
        with pytest.raises(PacketError):
            IPv4Packet.decode(bytes(data))
