"""The Chronos-enhanced NTP client.

The client builds its server pool with :class:`ChronosPoolGenerator`, then
every poll interval samples a random subset of the pool, measures offsets
with ordinary mode 3/4 exchanges, and feeds the samples to
:func:`chronos_select`.  Failed rounds are retried with fresh subsets; after
``max_retries`` failures the client enters panic mode and queries the whole
pool.  Only the NTP *client* changes — servers are untouched — which is what
made Chronos attractive for deployment and also what leaves its DNS-based
pool generation unprotected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dns.stub import StubResolver
from repro.netsim.host import Host
from repro.netsim.simulator import Simulator
from repro.ntp.chronos.pool_generation import ChronosPoolGenerator, PoolGenerationConfig
from repro.ntp.chronos.selection import chronos_select, panic_select
from repro.ntp.clock import SystemClock
from repro.ntp.errors import NTPPacketError
from repro.ntp.packet import NTPMode, NTPPacket, NTP_PORT


@dataclass
class ChronosConfig:
    """Parameters of the Chronos client."""

    pool_generation: PoolGenerationConfig = field(default_factory=PoolGenerationConfig)
    servers_per_round: int = 15
    poll_interval: float = 300.0
    response_timeout: float = 2.0
    agreement_bound: float = 0.025
    drift_bound: float = 0.125
    max_retries: int = 3
    step_threshold: float = 0.128


@dataclass
class ChronosStats:
    """Counters describing the client's behaviour."""

    rounds: int = 0
    accepted_rounds: int = 0
    rejected_rounds: int = 0
    panic_rounds: int = 0
    samples_collected: int = 0
    steps_applied: int = 0


class ChronosClient:
    """A Chronos client running on a simulated host."""

    client_name = "chronos"

    def __init__(
        self,
        host: Host,
        simulator: Simulator,
        resolver_ip: str,
        config: Optional[ChronosConfig] = None,
        initial_clock_offset: float = 0.0,
        name: str = "chronos",
    ) -> None:
        self.host = host
        self.simulator = simulator
        self.config = config or ChronosConfig()
        self.name = name
        self.clock = SystemClock(offset=initial_clock_offset, created_at=simulator.now)
        self.stub = StubResolver(host, simulator, resolver_ip)
        self.stats = ChronosStats()
        self.pool_generator = ChronosPoolGenerator(
            self.stub, simulator, self.config.pool_generation
        )
        self._rng = simulator.spawn_rng()
        self.socket = host.bind(0, self._on_packet)
        self._round_samples: dict[str, float] = {}
        self._round_pending: set[str] = set()
        self._round_retries = 0
        self._round_panic = False
        self.started = False

    # ------------------------------------------------------------------ run
    def start(self, start_polling_after: Optional[float] = None) -> None:
        """Start pool generation and schedule the first polling round.

        By default polling starts once the pool-generation period has
        elapsed; passing ``start_polling_after`` lets experiments poll
        earlier, against the partially generated pool.
        """
        if self.started:
            return
        self.started = True
        self.pool_generator.start()
        generation_time = (
            self.config.pool_generation.lookup_interval
            * self.config.pool_generation.total_lookups
        )
        delay = generation_time if start_polling_after is None else start_polling_after
        self.simulator.schedule(delay, self._poll_round, label=f"{self.name} round")

    def pool(self) -> set[str]:
        """The server pool gathered so far."""
        return self.pool_generator.pool()

    # ---------------------------------------------------------------- rounds
    def _poll_round(self, panic: bool = False, retries: int = 0) -> None:
        if not self.started:
            return
        pool = sorted(self.pool())
        if not pool:
            self.simulator.schedule(self.config.poll_interval, self._poll_round)
            return
        self.stats.rounds += 1
        if panic:
            self.stats.panic_rounds += 1
            targets = pool
        else:
            count = min(self.config.servers_per_round, len(pool))
            indices = self._rng.choice(len(pool), size=count, replace=False)
            targets = [pool[int(i)] for i in indices]

        self._round_samples = {}
        self._round_pending = set(targets)
        self._round_panic = panic
        self._round_retries = retries
        for server_ip in targets:
            query = NTPPacket.client_query(self.clock.time(self.simulator.now))
            self.socket.sendto(query.encode(), server_ip, NTP_PORT)
        self.simulator.schedule(
            self.config.response_timeout, self._finish_round, label=f"{self.name} round-end"
        )

    def _on_packet(self, payload: bytes, src_ip: str, src_port: int) -> None:
        try:
            packet = NTPPacket.decode(payload)
        except NTPPacketError:
            return
        if packet.mode is not NTPMode.SERVER or packet.is_kiss_of_death:
            return
        if src_ip not in self._round_pending:
            return
        self._round_pending.discard(src_ip)
        offset = packet.transmit_timestamp.to_unix() - self.clock.time(self.simulator.now)
        self._round_samples[src_ip] = offset
        self.stats.samples_collected += 1

    def _finish_round(self) -> None:
        samples = list(self._round_samples.values())
        if self._round_panic:
            offset = panic_select(samples)
            self._apply(offset)
            self._schedule_next_round()
            return

        result = chronos_select(
            samples,
            local_offset_estimate=0.0,
            agreement_bound=self.config.agreement_bound,
            drift_bound=self.config.drift_bound,
        )
        if result.accepted:
            self.stats.accepted_rounds += 1
            self._apply(result.offset)
            self._schedule_next_round()
            return

        self.stats.rejected_rounds += 1
        if self._round_retries + 1 >= self.config.max_retries:
            self._poll_round(panic=True)
        else:
            self._poll_round(panic=False, retries=self._round_retries + 1)

    def _schedule_next_round(self) -> None:
        self.simulator.schedule(
            self.config.poll_interval, self._poll_round, label=f"{self.name} round"
        )

    def _apply(self, offset: float) -> None:
        now = self.simulator.now
        if abs(offset) <= self.config.step_threshold:
            self.clock.slew(offset * 0.5, now)
        else:
            self.clock.step(offset, now)
            self.stats.steps_applied += 1

    # ------------------------------------------------------------ inspection
    def clock_error(self) -> float:
        """Signed clock error versus true (simulated) time."""
        return self.clock.error(self.simulator.now)

    def attacker_fraction(self, attacker_addresses: set[str]) -> float:
        """Fraction of the generated pool under attacker control."""
        return self.pool_generator.attacker_fraction(attacker_addresses)
