"""Figure 7 — latency differences of the timing side-channel cache probe.

The paper's attempt to detect cached pool records through query latency did
not produce a usable threshold: the distribution of ``t_first - t_avg`` over
open resolvers shows no clean bimodal split.  The benchmark rebuilds the
histogram and verifies the negative result (best achievable classification
accuracy stays well below reliable).
"""

from __future__ import annotations

import numpy as np

from repro.measurement.population import ResolverPopulationParameters, generate_open_resolvers
from repro.measurement.report import format_table
from repro.measurement.timing_side_channel import TimingSideChannelStudy


def run_study(size=12_000):
    resolvers = generate_open_resolvers(ResolverPopulationParameters(size=size))
    return TimingSideChannelStudy(resolvers, rng=np.random.default_rng(7)).run()


def test_fig7_timing_side_channel(run_once):
    report = run_once(run_study)
    counts, edges = report.histogram(bins=25, value_range=(-50.0, 200.0))
    print()
    print(
        format_table(
            ["t_first - t_avg (ms)", "Resolvers"],
            [
                [f"{edges[i]:.0f} – {edges[i + 1]:.0f}", int(counts[i])]
                for i in range(len(counts))
            ],
            title="Figure 7 — latency difference when querying open resolvers for pool.ntp.org",
        )
    )
    threshold, accuracy = report.best_threshold_accuracy()
    print(f"best threshold: {threshold:.1f} ms, best achievable accuracy: {accuracy:.2f}")
    assert counts.sum() == len(report.results)
    # The negative result: no threshold separates cached from non-cached well.
    assert accuracy < 0.90
    # Both signs are populated (cached probes sometimes look slower and vice versa).
    differences = report.differences_ms()
    assert (differences < 10).mean() > 0.2
    assert (differences > 30).mean() > 0.2
