"""Trend-aware regression gate: rolling history windows with noise bands."""

from __future__ import annotations

import os
import sys

import pytest

BENCHMARKS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)
sys.path.insert(0, BENCHMARKS_DIR)

from check_regression import (  # noqa: E402
    DEFAULT_HISTORY_MIN,
    HISTORY_SWEEP,
    append_history,
    collect_history,
    compare,
    trend_compare,
)
from repro.experiments.store import RunStore  # noqa: E402


def _doc(value: float) -> dict:
    return {
        "schema": "repro-bench/1",
        "microbenchmarks": {"packets_per_sec": value},
    }


def _history(tmp_path, values) -> list[dict]:
    root = str(tmp_path / "history")
    for value in values:
        append_history(_doc(value), root)
    return collect_history(root, window=10)


class TestHistoryStore:
    def test_append_creates_store_sweep(self, tmp_path):
        root = str(tmp_path / "history")
        metrics = append_history(_doc(100.0), root)
        assert metrics == {"microbenchmarks.packets_per_sec": 100.0}
        store = RunStore(root)
        assert store.sweeps() == [HISTORY_SWEEP]
        assert store.metric_history(
            HISTORY_SWEEP, "microbenchmarks.packets_per_sec"
        ) == [100.0]

    def test_collect_history_windows_most_recent(self, tmp_path):
        root = str(tmp_path / "history")
        for value in range(6):
            append_history(_doc(float(value)), root)
        window = collect_history(root, window=3)
        assert [s["metrics"]["microbenchmarks.packets_per_sec"] for s in window] == [
            3.0,
            4.0,
            5.0,
        ]

    def test_missing_store_reads_empty(self, tmp_path):
        assert collect_history(str(tmp_path / "nowhere"), window=5) == []


class TestTrendCompare:
    def test_few_samples_fall_back_to_single_baseline(self, tmp_path):
        history = _history(tmp_path, [100.0])  # below DEFAULT_HISTORY_MIN
        assert len(history) < DEFAULT_HISTORY_MIN
        regressions, notes = trend_compare(_doc(100.0), _doc(70.0), history)
        assert regressions and "single baseline" in regressions[0]
        # matches what the plain gate would say about the same pair
        plain, _ = compare(_doc(100.0), _doc(70.0))
        assert len(plain) == len(regressions)

    def test_median_of_window_beats_one_lucky_number(self, tmp_path):
        # one lucky committed 100 would flag 75 as a -25% regression, but
        # the trend says typical runs land near 76
        history = _history(tmp_path, [77.0, 75.0, 76.0, 78.0, 74.0])
        regressions, notes = trend_compare(_doc(100.0), _doc(75.0), history)
        assert regressions == []
        assert any("median[5]" in note for note in notes)

    def test_collapse_below_trend_band_fails(self, tmp_path):
        history = _history(tmp_path, [100.0, 102.0, 98.0, 101.0, 99.0])
        regressions, _notes = trend_compare(_doc(100.0), _doc(40.0), history)
        assert len(regressions) == 1
        assert "trend band" in regressions[0]

    def test_noisy_metric_widens_its_band(self, tmp_path):
        # ±40% wobble across the window: pstdev/median ≈ 0.33, so the band
        # grows to 2.5σ ≈ 50% (the cap) and a 45% dip stays green
        history = _history(tmp_path, [60.0, 140.0, 100.0, 65.0, 135.0])
        regressions, _notes = trend_compare(_doc(100.0), _doc(55.0), history)
        assert regressions == []

    def test_steady_metric_keeps_static_band(self, tmp_path):
        history = _history(tmp_path, [100.0] * 5)
        regressions, _notes = trend_compare(_doc(100.0), _doc(79.0), history)
        assert len(regressions) == 1  # -21% on a 20% band

    def test_metric_missing_everywhere_is_skipped(self, tmp_path):
        history = _history(tmp_path, [100.0])
        empty = {"schema": "repro-bench/1", "microbenchmarks": {}}
        regressions, notes = trend_compare(empty, empty, history)
        assert regressions == []
        assert all("skipped" in n or "(" in n for n in notes)
