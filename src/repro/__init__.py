"""repro — reproduction of "The Impact of DNS Insecurity on Time" (DSN 2020).

The package implements, from scratch and in pure Python, every system the
paper's attacks and measurements touch:

* :mod:`repro.netsim` — a discrete-event network simulator with byte-accurate
  IPv4 fragmentation, UDP checksums, ICMP/PMTUD and off-path injection,
* :mod:`repro.dns` — DNS wire format, authoritative nameservers (including a
  ``pool.ntp.org`` model), caching resolvers and simplified DNSSEC,
* :mod:`repro.ntp` — NTP packets, clocks, rate-limiting servers, the pool
  population, behavioural models of seven client implementations and the
  Chronos-enhanced client,
* :mod:`repro.core` — the paper's contribution: the off-path DNS poisoning
  primitive, the boot-time / run-time / Chronos attacks and the analytic
  success-probability model,
* :mod:`repro.measurement` — the attack-surface measurement methodologies run
  against synthetic Internet populations,
* :mod:`repro.testbed` — a pre-wired lab topology used by examples, tests and
  benchmarks.
"""

from repro.testbed import LabTestbed, TestbedConfig, build_testbed

__version__ = "1.0.0"

__all__ = ["LabTestbed", "TestbedConfig", "build_testbed", "__version__"]
