"""Named, picklable scenario functions for the experiment engine.

Worker processes receive only a :class:`~repro.experiments.runner.RunSpec`
(a scenario *name* plus primitive parameters) and resolve the callable here.
Every scenario builds its own simulator from its own seed, so a scenario run
is a pure function of its parameters and reproduces bit-for-bit regardless
of which process executes it.

The two scenarios shipped here are the ones the ported benchmarks need
(Table II run-time attack durations and Table III vulnerability
probabilities); measurement studies and new workloads register theirs with
the :func:`scenario` decorator.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

SCENARIOS: dict[str, Callable[..., Any]] = {}

#: Multi-tenant batch executors: scenario name -> callable taking a list of
#: parameter dicts and returning one result per dict, in order.  Registered
#: only for scenarios that benefit from sharing a worker's warmed caches
#: across several small simulations (see ``ExperimentRunner``'s
#: ``tenants_per_worker``).  Packs must be semantically identical to
#: running the scenario per-dict — the runner falls back to per-spec
#: execution on any pack failure.
TENANT_PACKS: dict[str, Callable[[list[dict[str, Any]]], list[Any]]] = {}


def scenario(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a scenario function under ``name``."""

    def register(func: Callable[..., Any]) -> Callable[..., Any]:
        if name in SCENARIOS:
            raise ValueError(f"scenario {name!r} already registered")
        SCENARIOS[name] = func
        return func

    return register


def get_scenario(name: str) -> Callable[..., Any]:
    """Resolve a registered scenario, with a helpful error for typos."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS)) or "(none)"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def tenant_pack(
    name: str,
) -> Callable[
    [Callable[[list[dict[str, Any]]], list[Any]]],
    Callable[[list[dict[str, Any]]], list[Any]],
]:
    """Register a multi-tenant batch executor for scenario ``name``."""

    def register(
        func: Callable[[list[dict[str, Any]]], list[Any]]
    ) -> Callable[[list[dict[str, Any]]], list[Any]]:
        if name not in SCENARIOS:
            raise ValueError(f"tenant pack for unregistered scenario {name!r}")
        if name in TENANT_PACKS:
            raise ValueError(f"tenant pack for {name!r} already registered")
        TENANT_PACKS[name] = func
        return func

    return register


def get_tenant_pack(
    name: str,
) -> Optional[Callable[[list[dict[str, Any]]], list[Any]]]:
    """The batch executor for ``name``, or ``None`` when it runs per-spec."""
    return TENANT_PACKS.get(name)


# --------------------------------------------------------------------- table2
@scenario("table2_runtime_attack")
def table2_runtime_attack(
    client: str = "ntpd",
    attack: str = "P1",
    seed: int = 5,
    pool_size: int = 48,
    warmup_seconds: float = 1500.0,
    max_duration_hours: float = 3.0,
    trusted_fabric: bool = False,
) -> dict[str, Any]:
    """One cell of Table II: run-time attack against one client model.

    Mirrors the original ``bench_table2_runtime_attack.run_scenario`` step
    for step (same construction order, same seed handling) so that a fixed
    seed yields results bit-identical to the pre-engine benchmark.

    ``trusted_fabric`` is the ROADMAP's "lab-internal fabric" variant:
    :meth:`~repro.netsim.network.Network.trust_link` is applied to every
    link between the victim client and its upstream pool servers (and the
    victim↔resolver path) before the attack runs — the links an
    experimenter operating a closed lab testbed vouches for.  Trusted
    links skip UDP checksum verification and unfragmented-packet defrag
    bookkeeping on delivery; for the well-formed traffic of this scenario
    that changes *no* simulation outcome (asserted by
    ``tests/experiments/test_trusted_fabric.py``, which pins the variant's
    results to the golden run), only the per-packet verification work — so
    the wall-clock delta against the default profile is exactly what trust
    buys end-to-end.
    """
    from repro.core.run_time import RunTimeAttack, RunTimeScenario
    from repro.ntp.clients import ChronyClient, NtpdClient, SystemdTimesyncdClient
    from repro.testbed import TestbedConfig, build_testbed

    client_models = {
        "ntpd": NtpdClient,
        # The paper's "openntpd" row is reproduced with the slow SNTP
        # failover behaviour of systemd-timesyncd (see DESIGN.md).
        "openntpd*": SystemdTimesyncdClient,
        "chrony": ChronyClient,
    }
    if client not in client_models:
        raise ValueError(f"unknown client model {client!r}")
    scenario_enum = {
        "P1": RunTimeScenario.P1_KNOWN_SERVERS,
        "P2": RunTimeScenario.P2_REFID_DISCOVERY,
    }[attack]

    testbed = build_testbed(TestbedConfig(pool_size=pool_size, seed=seed))
    victim = testbed.add_client(client_models[client])
    if trusted_fabric:
        # Victim↔upstream NTP paths and the victim's resolver path are
        # trusted; attacker-facing paths keep the default
        # full-verification profile (trust is the experimenter's, not the
        # attacker's).  Spoofed queries claiming the victim's address ride
        # the same trusted victim↔server pairs — on a closed fabric the
        # *path* is vouched for, whichever end crafted the packet.
        victim_ip = victim.host.ip
        for server_ip in testbed.pool.addresses:
            testbed.network.trust_link(victim_ip, server_ip)
        testbed.network.trust_link(victim_ip, testbed.resolver.ip)
    victim.start()
    testbed.run_for(warmup_seconds)
    run_time_attack = RunTimeAttack(
        testbed.attacker,
        testbed.simulator,
        testbed.resolver,
        victim,
        scenario=scenario_enum,
        known_server_list=testbed.pool.addresses,
        max_duration=3600.0 * max_duration_hours,
    )
    result = run_time_attack.run()
    return {
        "label": f"{client}+trusted-fabric" if trusted_fabric else client,
        "scenario": scenario_enum.value,
        "seed": seed,
        "success": result.success,
        "minutes": result.attack_duration_minutes,
        "shift": result.clock_shift_achieved,
        "events_processed": testbed.simulator.events_processed,
        "packets_transmitted": testbed.network.packets_transmitted,
    }


@scenario("table2_trusted_fabric")
def table2_trusted_fabric(**params: Any) -> dict[str, Any]:
    """Named alias: :func:`table2_runtime_attack` on the lab-internal fabric."""
    return table2_runtime_attack(trusted_fabric=True, **params)


# --------------------------------------------------------------------- table3
@scenario("table3_probabilities")
def table3_probabilities(
    m_min: int = 1,
    m_max: int = 9,
    p_rate: float | None = None,
    trials: int = 200_000,
    mc_seed: int = 0,
) -> dict[str, Any]:
    """All rows of Table III plus the shared-matrix Monte-Carlo cross-check.

    The Monte-Carlo column draws a single ``(trials, m_max)`` matrix and
    reuses it across every row (see
    :func:`repro.core.probability.monte_carlo_table3`), so the whole table
    costs one RNG pass.
    """
    import numpy as np

    from repro.core.probability import PAPER_P_RATE, monte_carlo_table3, table3_rows

    p = PAPER_P_RATE if p_rate is None else p_rate
    m_values = range(m_min, m_max + 1)
    rows = table3_rows(m_values=m_values, p_rate=p)
    monte_carlo = monte_carlo_table3(
        m_values=m_values,
        p_rate=p,
        trials=trials,
        rng=np.random.default_rng(mc_seed),
    )
    return {
        "p_rate": p,
        "trials": trials,
        "rows": [
            {
                "m": row.m,
                "n": row.n,
                "p1": row.p1,
                "p2": row.p2,
                "mc_p1": monte_carlo[row.m][0],
                "mc_p2": monte_carlo[row.m][1],
            }
            for row in rows
        ],
    }


# ---------------------------------------------------------------------- chaos
@scenario("chaos_link_faults")
def chaos_link_faults(
    seed: int = 0,
    packets: int = 400,
    interval: float = 0.25,
    payload_size: int = 64,
    p_enter_bad: float = 0.05,
    p_exit_bad: float = 0.3,
    loss_bad: float = 0.8,
    corruption: float = 0.05,
    duplication: float = 0.05,
    reorder: float = 0.1,
    reorder_delay: float = 0.2,
    partition_start: float = 20.0,
    partition_duration: float = 5.0,
    strict: bool = True,
) -> dict[str, Any]:
    """Seeded chaos microworld: one faulted link under every fault model.

    A sender streams ``packets`` UDP datagrams at a fixed ``interval``
    across a link carrying a full :class:`~repro.netsim.faults.FaultPlan`
    (Gilbert–Elliott bursty loss, bit-flip corruption, duplication,
    reorder jitter, a scheduled partition).  The simulator runs with the
    ``strict`` invariant guards on, so heap-monotonicity or accounting
    violations raise instead of corrupting results silently.

    The returned document states the conservation laws the chaos property
    suite asserts:

    * every capture-observed delivery is either verified (``delivered``)
      or rejected by the *real* checksum verify (``checksum_failures``) —
      corruption is detected by arithmetic, not bookkeeping;
    * ``captured == transmitted - fault_dropped + duplicated``; and
    * the whole sweep terminates (the simulator drains) despite
      duplication — fault channels never create self-amplifying traffic.
    """
    from repro.netsim import (
        Corruption,
        Duplication,
        GilbertElliott,
        LatencySpike,
        Network,
        PacketCapture,
        Partition,
        ReorderJitter,
        Simulator,
        UDPDatagram,
    )

    simulator = Simulator(seed=seed, strict=strict)
    network = Network(simulator)
    sender = network.add_host("sender", "10.0.0.1")
    receiver = network.add_host("receiver", "10.0.0.2")
    delivered: list[float] = []
    receiver.bind(
        123, on_datagram=lambda payload, src, port: delivered.append(simulator.now)
    )
    network.set_link_faults(
        "10.0.0.1",
        "10.0.0.2",
        GilbertElliott(
            p_enter_bad=p_enter_bad, p_exit_bad=p_exit_bad, loss_bad=loss_bad
        ),
        Corruption(corruption),
        Duplication(duplication),
        ReorderJitter(reorder, max_delay=reorder_delay),
        Partition(partition_start, partition_duration),
        LatencySpike(partition_start + partition_duration, 2.0, extra=0.5),
    )
    capture = PacketCapture()
    network.attach_capture(capture)

    source = sender.bind(0)
    payload = bytes(range(256))[:payload_size] or b"x"

    def send(index: int) -> None:
        source.sendto(payload + index.to_bytes(4, "big"), "10.0.0.2", 123)

    for index in range(packets):
        simulator.post(index * interval, send, index)
    simulator.run()
    if strict:
        simulator.check_invariants()

    corrupted_deliveries = sum(
        1 for captured in capture.packets if captured.packet.metadata.get("corrupted")
    )
    stats = network.fault_stats()
    return {
        "seed": seed,
        "packets": packets,
        "delivered": len(delivered),
        "checksum_failures": receiver.stats.udp_checksum_failures,
        "corrupted_deliveries": corrupted_deliveries,
        "captured": len(capture.packets),
        "transmitted": network.packets_transmitted,
        "fault_dropped": network.packets_dropped,
        "duplicated": stats.duplicated,
        "corrupted_events": stats.corrupted,
        "loss_dropped": stats.dropped_loss,
        "partition_dropped": stats.dropped_partition,
        "reordered": stats.reordered,
        "events_processed": simulator.events_processed,
        "final_time": simulator.now,
    }


# ----------------------------------------------------------------- population
@scenario("population_fleet")
def population_fleet(
    spec_json: str = "", seed: int = 0, detail_limit: int = 32
) -> dict[str, Any]:
    """One heterogeneous client fleet through the run-time attack.

    ``spec_json`` is the canonical serialisation of a
    :class:`~repro.population.spec.PopulationSpec` (empty = the default
    single-``ntpd``-equivalent spec); the fleet is generated, simulated on
    one shared network/heap, and folded into a constant-memory streaming
    aggregate (see :mod:`repro.population.fleet`).
    """
    from repro.population.fleet import run_fleet, spec_from_json
    from repro.population.spec import PopulationSpec

    spec = spec_from_json(spec_json) if spec_json else PopulationSpec()
    return run_fleet(spec, seed=seed, detail_limit=detail_limit)


@tenant_pack("population_fleet")
def population_fleet_pack(param_sets: list[dict[str, Any]]) -> list[Any]:
    """Multi-tenant worker mode: several small fleets, one process.

    Each tenant still builds its own simulator (runs stay pure functions
    of their parameters), but the pack shares the worker's warmed codec /
    intern / memo caches and the memoised spec parse across tenants —
    the per-simulation setup cost a landscape of small cells otherwise
    pays once per pool task.
    """
    return [population_fleet(**params) for params in param_sets]


@scenario("population_landscape")
def population_landscape(
    spec_json: str = "",
    axis_x: str = "share:ntpd",
    x: float = 0.5,
    axis_y: str = "pool_rate_limit_fraction",
    y: float = 1.0,
    seed: int = 0,
    detail_limit: int = 0,
) -> dict[str, Any]:
    """One cell of a population landscape: base spec + two axis overrides.

    The landscape sweep (:func:`repro.population.landscape.sweep_landscape`)
    fans a grid of these through ``run_stored``; keeping the axis values as
    first-class run-spec parameters (instead of burying them in per-cell
    JSON) makes the grid legible in store manifests and reports.
    """
    from repro.population.fleet import run_fleet, spec_from_json
    from repro.population.landscape import apply_axis
    from repro.population.spec import PopulationSpec

    base = spec_from_json(spec_json) if spec_json else PopulationSpec()
    spec = apply_axis(apply_axis(base, axis_x, x), axis_y, y)
    result = run_fleet(spec, seed=seed, detail_limit=detail_limit)
    result["axis_x"] = axis_x
    result["x"] = x
    result["axis_y"] = axis_y
    result["y"] = y
    return result


@tenant_pack("population_landscape")
def population_landscape_pack(param_sets: list[dict[str, Any]]) -> list[Any]:
    """Landscape cells are small fleets — pack them like fleets."""
    return [population_landscape(**params) for params in param_sets]


@scenario("population_chaos")
def population_chaos(
    spec_json: str = "",
    plan_json: str = "",
    seed: int = 0,
    until: float = 0.0,
    checkpoint: int = 0,
    detail_limit: int = 0,
) -> dict[str, Any]:
    """One chaos-campaign checkpoint: the fleet simulated over ``[0, until]``.

    ``plan_json`` is the canonical serialisation of a
    :class:`~repro.population.chaos.ChaosPlan`; the plan compiles purely
    into per-client fault schedules before the fleet runs, so the result
    is a pure function of the parameters — which is what lets
    ``run_chaos_campaign`` resume a killed campaign bit-identically.
    ``checkpoint`` is the ordinal within the campaign (carried through to
    the stored record; the simulation ignores it).
    """
    from repro.population.chaos import ChaosPlan, plan_from_json, run_chaos_checkpoint
    from repro.population.fleet import spec_from_json
    from repro.population.spec import PopulationSpec

    spec = spec_from_json(spec_json) if spec_json else PopulationSpec()
    plan = plan_from_json(plan_json) if plan_json else ChaosPlan()
    result = run_chaos_checkpoint(
        spec, plan, seed=seed, until=until, detail_limit=detail_limit
    )
    result["checkpoint"] = checkpoint
    return result


@tenant_pack("population_chaos")
def population_chaos_pack(param_sets: list[dict[str, Any]]) -> list[Any]:
    """Checkpoint prefixes are independent fleets — pack them like fleets."""
    return [population_chaos(**params) for params in param_sets]
