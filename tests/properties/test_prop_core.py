"""Property-based tests for core invariants: cache, probabilities, clocks, NTP wire."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.probability import (
    probability_scenario1,
    probability_scenario2,
    required_removals,
)
from repro.dns.cache import DNSCache
from repro.dns.records import a_record
from repro.ntp.clock import SystemClock
from repro.ntp.packet import NTPMode, NTPPacket
from repro.ntp.timestamps import NTPTimestamp

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
m_values = st.integers(min_value=1, max_value=12)
# Bounded below the NTP era-0 rollover (February 2036), where the 32-bit
# seconds field wraps; era handling is out of scope for the reproduction.
unix_times = st.floats(min_value=0.0, max_value=2.0e9, allow_nan=False, allow_infinity=False)
offsets = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestProbabilityProperties:
    @given(m_values, probabilities)
    def test_probabilities_in_unit_interval(self, m, p):
        n = required_removals(m)
        assert 0.0 <= probability_scenario1(n, p) <= 1.0
        assert 0.0 <= probability_scenario2(m, n, p) <= 1.0

    @given(m_values, probabilities)
    def test_p2_at_least_p1(self, m, p):
        n = required_removals(m)
        assert probability_scenario2(m, n, p) >= probability_scenario1(n, p) - 1e-12

    @given(m_values)
    def test_required_removals_is_majority_and_within_m(self, m):
        n = required_removals(m)
        assert n > m / 2
        assert n <= m

    @given(st.integers(min_value=1, max_value=10), probabilities, probabilities)
    def test_p1_monotone_in_p_rate(self, n, p_low, p_high):
        assume(p_low <= p_high)
        assert probability_scenario1(n, p_low) <= probability_scenario1(n, p_high) + 1e-12


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4000),
                st.floats(min_value=0, max_value=5000, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=100)
    def test_lookup_never_returns_expired_records(self, events):
        from repro.dns.records import RRType

        cache = DNSCache()
        now = 0.0
        for ttl, advance in events:
            cache.store([a_record("pool.ntp.org", "1.2.3.4", ttl=ttl)], now)
            now += advance
            records = cache.lookup("pool.ntp.org", RRType.A, now)
            if records is not None:
                # A returned record implies the last store has not expired yet.
                assert advance < ttl
                assert all(0 <= r.ttl <= ttl for r in records)


class TestCacheTTLProperties:
    @given(
        st.integers(min_value=1, max_value=100000),
        st.floats(min_value=0, max_value=200000, allow_nan=False),
    )
    def test_remaining_ttl_bounded_by_original(self, ttl, elapsed):
        cache = DNSCache()
        cache.store([a_record("pool.ntp.org", "1.2.3.4", ttl=ttl)], now=0.0)
        from repro.dns.records import RRType

        records = cache.lookup("pool.ntp.org", RRType.A, now=elapsed)
        if records is None:
            assert elapsed >= min(ttl, cache.max_ttl)
        else:
            assert 0 <= records[0].ttl <= ttl


class TestClockProperties:
    @given(offsets, unix_times)
    def test_error_equals_offset_without_drift(self, offset, when):
        clock = SystemClock(offset=offset)
        assert abs(clock.error(when) - offset) < 1e-6

    @given(offsets, st.lists(offsets, max_size=10), unix_times)
    def test_total_stepped_sums_steps(self, initial, steps, when):
        clock = SystemClock(offset=initial)
        for index, step in enumerate(steps):
            clock.step(step, true_time=float(index))
        assert abs(clock.total_stepped() - sum(steps)) < 1e-6
        assert abs(clock.error(when) - (initial + sum(steps))) < 1e-6


class TestNTPWireProperties:
    @given(unix_times)
    def test_timestamp_round_trip(self, when):
        ts = NTPTimestamp.from_unix(when)
        assert abs(ts.to_unix() - when) < 1e-5

    @given(unix_times, st.integers(min_value=0, max_value=15), st.sampled_from(list(NTPMode)))
    @settings(max_examples=150)
    def test_packet_round_trip(self, when, stratum, mode):
        refid = "203.0.113.7" if stratum >= 2 else "GPS"
        packet = NTPPacket(
            mode=mode,
            stratum=stratum,
            reference_id=refid,
            transmit_timestamp=NTPTimestamp.from_unix(when),
        )
        decoded = NTPPacket.decode(packet.encode())
        assert decoded.mode is mode
        assert decoded.stratum == stratum
        assert decoded.transmit_timestamp == packet.transmit_timestamp
