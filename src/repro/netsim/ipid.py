"""IPID assignment policies.

The 16-bit IP identification field groups fragments of the same original
packet.  Whether an off-path attacker can plant a spoofed fragment that will
be reassembled with a genuine one depends on how predictable the sender's
IPID sequence is.  The paper (section III-2) relies on the well-known fact
that many operating systems assign IPIDs from a *globally incrementing*
counter, which an attacker can sample by sending its own queries and then
extrapolate.  Other policies (per-destination counters, purely random IPIDs)
make prediction harder or impossible, and the measurement package uses them
to model the non-vulnerable part of the nameserver population.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class IPIDAllocator(ABC):
    """Strategy interface for assigning the IPID of outgoing packets."""

    @abstractmethod
    def next_ipid(self, dst: str) -> int:
        """Return the IPID to use for the next packet towards ``dst``."""

    @property
    @abstractmethod
    def predictable(self) -> bool:
        """Whether an off-path observer can usefully extrapolate the sequence."""


class GlobalCounterIPID(IPIDAllocator):
    """A single counter shared by all destinations (classic Linux/Windows).

    This is the vulnerable policy: the attacker queries the nameserver a few
    times from its own host, observes consecutive IPIDs, and extrapolates the
    value that will be used for the response to the victim resolver.
    """

    def __init__(self, start: int = 0, increment: int = 1) -> None:
        self._counter = start & 0xFFFF
        self._increment = increment

    def next_ipid(self, dst: str) -> int:
        value = self._counter
        self._counter = (self._counter + self._increment) & 0xFFFF
        return value

    @property
    def predictable(self) -> bool:
        return True

    @property
    def current(self) -> int:
        """The value the next call will return (test/attacker convenience)."""
        return self._counter


class PerDestinationIPID(IPIDAllocator):
    """A separate counter per destination address.

    Sampling from the attacker's own host reveals nothing about the counter
    used towards the victim resolver, so the attacker must fall back to
    spraying many candidate IPIDs (bounded by the victim's fragment-cache
    limit of 64/100 identical fragments, paper section III-2).
    """

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng or np.random.default_rng(0)
        self._counters: dict[str, int] = {}

    def next_ipid(self, dst: str) -> int:
        if dst not in self._counters:
            self._counters[dst] = int(self._rng.integers(0, 1 << 16))
        value = self._counters[dst]
        self._counters[dst] = (value + 1) & 0xFFFF
        return value

    @property
    def predictable(self) -> bool:
        return False


class RandomIPID(IPIDAllocator):
    """Uniformly random IPIDs: prediction is hopeless for the attacker."""

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng or np.random.default_rng(0)

    def next_ipid(self, dst: str) -> int:
        return int(self._rng.integers(0, 1 << 16))

    @property
    def predictable(self) -> bool:
        return False
