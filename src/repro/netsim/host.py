"""Simulated hosts: the IP/UDP/ICMP stack every component runs on.

A :class:`Host` owns an address, a defragmentation cache, a path-MTU cache,
an IPID allocator and a set of bound UDP sockets.  Its behaviour is
parameterised by an :class:`OSProfile` capturing the operating-system
differences the paper's attacks care about: reassembly timeouts, fragment
limits, whether unauthenticated ICMP fragmentation-needed messages are
honoured, and how IPIDs are assigned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.netsim.datapath import HostDatapath
from repro.netsim.defrag import DefragmentationCache, ReassemblyPolicy
from repro.netsim.errors import PortInUseError
from repro.netsim.fragmentation import MINIMUM_IPV4_MTU, fragment_packet
from repro.netsim.icmp import ICMPMessage
from repro.netsim.ipid import GlobalCounterIPID, IPIDAllocator
from repro.netsim.packet import IPProtocol, IPV4_HEADER_LEN, IPv4Packet
from repro.netsim.sockets import DatagramHandler, UDPSocket
from repro.netsim.udp import UDPDatagram, encode_udp

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.netsim.network import Network


@dataclass
class OSProfile:
    """Operating-system parameters relevant to the attacks.

    The defaults model an unpatched Linux host; the classmethods provide the
    profiles the paper measured (section IV-A: 30 s reassembly timeout on
    Linux, 60–120 s on Windows; section III-2: 64 and 100 pending-fragment
    limits on patched Linux and Windows respectively).
    """

    name: str = "linux"
    reassembly_timeout: float = 30.0
    max_pending_fragments: int = 64
    accepts_icmp_frag_needed: bool = True
    validates_icmp_payload: bool = False
    min_pmtu: int = 68
    reassembly_policy: ReassemblyPolicy = ReassemblyPolicy.FIRST_WINS
    verify_udp_checksum: bool = True
    drops_fragments: bool = False

    @classmethod
    def linux(cls) -> "OSProfile":
        """A patched Linux host (30 s timeout, 64 fragment buckets)."""
        return cls(name="linux")

    @classmethod
    def windows(cls) -> "OSProfile":
        """A Windows host (60 s timeout, 100 fragment buckets)."""
        return cls(
            name="windows",
            reassembly_timeout=60.0,
            max_pending_fragments=100,
        )

    @classmethod
    def windows_slow_expiry(cls) -> "OSProfile":
        """Windows variant with the 120 s upper bound the authors measured."""
        return cls(
            name="windows-120",
            reassembly_timeout=120.0,
            max_pending_fragments=100,
        )

    @classmethod
    def hardened(cls) -> "OSProfile":
        """A host that ignores unauthenticated PMTUD and validates ICMP payloads."""
        return cls(
            name="hardened",
            accepts_icmp_frag_needed=False,
            validates_icmp_payload=True,
            min_pmtu=576,
        )

    @classmethod
    def fragment_filtering(cls) -> "OSProfile":
        """A host (or its upstream firewall) that drops IP fragments.

        The ad-network study (Table V) found that roughly a third of
        resolvers reject fragmented DNS responses; this profile models them:
        such resolvers are immune to the defragmentation poisoning attack.
        """
        return cls(name="fragment-filtering", drops_fragments=True)


@dataclass(slots=True)
class HostStats:
    """Per-host counters used by tests and measurement reports.

    Slotted: the delivery pipeline bumps these per packet, and slot access
    skips the per-instance ``__dict__`` lookup.
    """

    udp_sent: int = 0
    udp_received: int = 0
    udp_checksum_failures: int = 0
    icmp_received: int = 0
    pmtu_updates: int = 0
    packets_fragmented: int = 0


class Host:
    """A network endpoint with an IPv4/UDP/ICMP stack.

    Hosts are created through :meth:`repro.netsim.network.Network.add_host`,
    which wires up the simulator clock and link layer.
    """

    def __init__(
        self,
        name: str,
        ip: str,
        network: "Network",
        profile: Optional[OSProfile] = None,
        ipid_allocator: Optional[IPIDAllocator] = None,
        interface_mtu: int = 1500,
    ) -> None:
        self.name = name
        self.ip = ip
        self.network = network
        #: Cached to avoid the two-attribute chase on every received packet.
        self.simulator = network.simulator
        self.profile = profile or OSProfile.linux()
        self.ipid_allocator = ipid_allocator or GlobalCounterIPID()
        self.interface_mtu = interface_mtu
        self.stats = HostStats()
        self.defrag = DefragmentationCache(
            timeout=self.profile.reassembly_timeout,
            max_pending_per_peer=self.profile.max_pending_fragments,
            policy=self.profile.reassembly_policy,
        )
        self._sockets: dict[int, UDPSocket] = {}
        self._pmtu: dict[str, int] = {}
        self._ephemeral_rng = network.simulator.spawn_rng()
        self.on_icmp: Optional[Callable[[ICMPMessage, str], None]] = None
        #: Optional raw-packet observer for traffic addressed *to this host*.
        #: A host can always inspect its own incoming IP headers (that is how
        #: the attacker samples a nameserver's IPID sequence from responses
        #: to its own queries); this is not an off-path capture of others'
        #: traffic.
        self.packet_tap: Optional[Callable[[IPv4Packet], None]] = None
        #: The compiled receive side (capture tap → defrag → checksum →
        #: demux → handler as one flat call chain); built last so every
        #: object it binds exists.  See :mod:`repro.netsim.datapath`.
        self.datapath = HostDatapath(self)

    # ------------------------------------------------------------------ UDP
    def bind(self, port: int, on_datagram: Optional[DatagramHandler] = None) -> UDPSocket:
        """Bind a UDP socket to ``port`` (0 picks a random ephemeral port)."""
        if port == 0:
            port = self.ephemeral_port()
        if port in self._sockets:
            raise PortInUseError(f"{self.name}: UDP port {port} already bound")
        socket = UDPSocket(host=self, port=port, on_datagram=on_datagram)
        self._sockets[port] = socket
        return socket

    def ephemeral_port(self) -> int:
        """Pick an unused port from the ephemeral range (49152–65535).

        Source-port randomisation is one of the two 16-bit challenge-response
        defences (alongside the DNS TXID) that force DNS poisoning attackers
        towards the fragmentation technique of the paper.
        """
        while True:
            port = int(self._ephemeral_rng.integers(49152, 65536))
            if port not in self._sockets:
                return port

    def release_port(self, port: int) -> None:
        """Remove the socket bound to ``port`` (called by socket.close)."""
        self._sockets.pop(port, None)

    def send_udp(self, dst_ip: str, datagram: UDPDatagram) -> None:
        """Encode, fragment if needed and hand a datagram to the network."""
        payload = encode_udp(self.ip, dst_ip, datagram)
        packet = IPv4Packet.udp(
            self.ip, dst_ip, payload, self.ipid_allocator.next_ipid(dst_ip)
        )
        self.stats.udp_sent += 1
        self._transmit(packet)

    def path_mtu(self, dst_ip: str) -> int:
        """The MTU currently used towards ``dst_ip`` (interface MTU if unknown)."""
        return min(self.interface_mtu, self._pmtu.get(dst_ip, self.interface_mtu))

    def _transmit(self, packet: IPv4Packet) -> None:
        """Fragment to the path MTU and hand fragments to the network."""
        mtu = self.path_mtu(packet.dst)
        if MINIMUM_IPV4_MTU <= mtu and IPV4_HEADER_LEN + len(packet.payload) <= mtu:
            # Fast path: the packet fits (and the MTU is not so small that
            # the fragmenter would reject it outright) — skip the call.
            self.network.transmit(packet)
            return
        fragments = fragment_packet(packet, mtu)
        if len(fragments) > 1:
            self.stats.packets_fragmented += 1
        for fragment in fragments:
            self.network.transmit(fragment)

    # ----------------------------------------------------------------- ICMP
    def send_icmp(self, dst_ip: str, message: ICMPMessage) -> None:
        """Send an ICMP message (used by the attacker for PMTUD abuse)."""
        packet = IPv4Packet(
            src=self.ip,
            dst=dst_ip,
            protocol=IPProtocol.ICMP,
            payload=b"",
            ipid=self.ipid_allocator.next_ipid(dst_ip),
            metadata={"icmp": message},
        )
        self.network.transmit(packet)

    def _handle_icmp(self, message: ICMPMessage, src_ip: str) -> None:
        self.stats.icmp_received += 1
        if message.is_frag_needed and self.profile.accepts_icmp_frag_needed:
            if self.profile.validates_icmp_payload and not message.embedded:
                return
            mtu = max(message.next_hop_mtu, self.profile.min_pmtu)
            # A real ICMP error embeds the offending packet, whose destination
            # tells the host which path the MTU applies to.  The attacker sets
            # "about_destination" to the victim resolver so that responses to
            # the resolver, not to the attacker, get fragmented.
            target = message.metadata.get("about_destination", src_ip)
            current = self._pmtu.get(target, self.interface_mtu)
            if mtu < current:
                self._pmtu[target] = mtu
                self.stats.pmtu_updates += 1
        if self.on_icmp is not None:
            self.on_icmp(message, src_ip)

    # -------------------------------------------------------------- receive
    def receive(self, packet: IPv4Packet) -> None:
        """Entry point for a packet reaching this host.

        Delegates to the compiled datapath (full-verification profile) so
        direct calls from tests share the single delivery code path the
        network uses.
        """
        self.datapath.deliver(packet)

    def receive_batch(self, packets: Iterable[IPv4Packet]) -> None:
        """Deliver a burst of packets to this host in order.

        Equivalent to calling :meth:`receive` per packet; the deliver
        callable is resolved once for the whole burst.
        """
        deliver = self.datapath.deliver
        for packet in packets:
            deliver(packet)

    # ------------------------------------------------------------- utilities
    def bound_ports(self) -> list[int]:
        """Ports with live sockets, mostly for assertions in tests."""
        return sorted(self._sockets)

    def forget_pmtu(self, dst_ip: Optional[str] = None) -> None:
        """Clear the path-MTU cache (entirely, or for one destination)."""
        if dst_ip is None:
            self._pmtu.clear()
        else:
            self._pmtu.pop(dst_ip, None)
