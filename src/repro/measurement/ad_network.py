"""The ad-network client-resolver study (Table V, section VIII-B).

A test web page served as a 'popunder' advertisement loads a series of
images, each from a purpose-built domain whose nameserver always answers
with fragments of a specific size (or with a deliberately broken / valid
DNSSEC signature).  Whether each image loads reveals whether the client's
resolver accepted that response:

* ``baseline``  — ordinary A record (sanity check; failures are discarded),
* ``ftiny``     — response fragmented to 68-byte fragments,
* ``fsmall``    — 296-byte fragments,
* ``fmedium``   — 580-byte fragments,
* ``fbig``      — 1280-byte fragments,
* ``sigfail``   — incorrectly DNSSEC-signed record (loads only if the
  resolver does **not** validate),
* ``sigright``  — correctly signed record (second sanity check).

Results with the page open for less than 30 seconds or failing either sanity
check are discarded.  Aggregation is by region and device type, plus a
"without Google" row excluding clients using Google Public DNS (identified
through the per-client random tokens in the nameserver logs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.measurement.population import WebClientSpec

#: The test domains and the fragment size (bytes) each one exercises.
TEST_DOMAINS = {
    "baseline": None,
    "ftiny": 68,
    "fsmall": 296,
    "fmedium": 580,
    "fbig": 1280,
    "sigfail": None,
    "sigright": None,
}

#: Fragment size labels in increasing order.
FRAGMENT_TESTS = ("ftiny", "fsmall", "fmedium", "fbig")


@dataclass
class ClientTestResult:
    """Per-client outcome of the seven image tests."""

    client: WebClientSpec
    loaded: dict[str, bool] = field(default_factory=dict)

    @property
    def valid(self) -> bool:
        """The paper's filtering: page open >= 30 s, baseline and sigright load."""
        return (
            self.client.completed_test
            and self.loaded.get("baseline", False)
            and self.loaded.get("sigright", False)
        )

    @property
    def accepts_tiny(self) -> bool:
        """Resolver accepted the 68-byte fragmented response."""
        return self.loaded.get("ftiny", False)

    @property
    def accepts_any_fragment(self) -> bool:
        """Resolver accepted at least one fragmented response."""
        return any(self.loaded.get(test, False) for test in FRAGMENT_TESTS)

    @property
    def validates_dnssec(self) -> bool:
        """Resolver rejected the broken signature but accepted the valid one."""
        return not self.loaded.get("sigfail", True) and self.loaded.get("sigright", False)


@dataclass
class AdNetworkGroupRow:
    """One aggregated row of Table V."""

    group: str
    dataset: int
    total: int
    accepts_tiny: int
    accepts_any: int
    validates_dnssec: int

    @property
    def tiny_fraction(self) -> float:
        """Fraction accepting 68-byte fragments."""
        return self.accepts_tiny / self.total if self.total else 0.0

    @property
    def any_fraction(self) -> float:
        """Fraction accepting any fragment size."""
        return self.accepts_any / self.total if self.total else 0.0

    @property
    def dnssec_fraction(self) -> float:
        """Fraction whose resolver validates DNSSEC."""
        return self.validates_dnssec / self.total if self.total else 0.0


@dataclass
class AdNetworkReport:
    """The aggregated study results (Table V plus the DNSSEC figures)."""

    valid_results: int
    discarded_results: int
    google_clients: int
    rows: list[AdNetworkGroupRow] = field(default_factory=list)

    def row(self, group: str) -> AdNetworkGroupRow:
        """Look up one aggregation row by its group label."""
        for row in self.rows:
            if row.group == group:
                return row
        raise KeyError(group)

    def dnssec_validation_range(self) -> tuple[float, float]:
        """Min/max DNSSEC validation fraction across the regional rows."""
        regional = [
            r.dnssec_fraction
            for r in self.rows
            if r.group not in ("ALL", "Without Google", "PC", "Mobile,Tablet")
            and r.total > 0
        ]
        if not regional:
            return (0.0, 0.0)
        return (min(regional), max(regional))


class AdNetworkStudy:
    """Runs the ad-network measurement over a synthetic client population."""

    def __init__(self, clients: list[WebClientSpec]) -> None:
        self.clients = clients

    @staticmethod
    def run_client_tests(client: WebClientSpec) -> ClientTestResult:
        """Model the seven image loads for one client."""
        result = ClientTestResult(client=client)
        result.loaded["baseline"] = client.baseline_ok
        result.loaded["sigright"] = client.baseline_ok
        result.loaded["sigfail"] = client.baseline_ok and not client.validates_dnssec
        for test, size in TEST_DOMAINS.items():
            if size is None:
                continue
            result.loaded[test] = client.baseline_ok and size in client.accepts_fragment_sizes
        return result

    def run(self) -> AdNetworkReport:
        """Execute the study: test every client, filter, aggregate."""
        results = [self.run_client_tests(client) for client in self.clients]
        valid = [r for r in results if r.valid]
        report = AdNetworkReport(
            valid_results=len(valid),
            discarded_results=len(results) - len(valid),
            google_clients=sum(1 for r in valid if r.client.uses_google_dns),
        )

        def aggregate(group: str, members: list[ClientTestResult], dataset: int) -> None:
            report.rows.append(
                AdNetworkGroupRow(
                    group=group,
                    dataset=dataset,
                    total=len(members),
                    accepts_tiny=sum(1 for m in members if m.accepts_tiny),
                    accepts_any=sum(1 for m in members if m.accepts_any_fragment),
                    validates_dnssec=sum(1 for m in members if m.validates_dnssec),
                )
            )

        regions = sorted({r.client.region for r in valid})
        for region in regions:
            members = [r for r in valid if r.client.region == region]
            dataset = members[0].client.dataset if members else 1
            aggregate(region, members, dataset)
        aggregate("ALL", valid, 1)
        aggregate("Without Google", [r for r in valid if not r.client.uses_google_dns], 1)
        for device in ("PC", "Mobile,Tablet"):
            aggregate(device, [r for r in valid if r.client.device == device], 1)
        return report
