"""Tests for the per-implementation client models (Table I behaviours)."""

from repro.ntp.association import AssociationState
from repro.ntp.clients import (
    CLIENT_REGISTRY,
    AndroidSNTPClient,
    ChronyClient,
    NtpclientClient,
    NtpdClient,
    NtpdateClient,
    OpenNTPDClient,
    SystemdTimesyncdClient,
)
from repro.ntp.clients.ntpd import NTP_MAXCLOCK, NTP_MINCLOCK


class TestTable1Attributes:
    def test_all_clients_vulnerable_at_boot_time(self):
        assert all(cls.supports_boot_time_attack for cls in CLIENT_REGISTRY.values())

    def test_runtime_attack_applicability_matches_table1(self):
        runtime_vulnerable = {
            name for name, cls in CLIENT_REGISTRY.items() if cls.supports_runtime_attack
        }
        assert runtime_vulnerable == {"ntpd", "chrony", "android", "systemd-timesyncd"}

    def test_runtime_vulnerable_clients_cover_at_least_45_percent_of_pool(self):
        share = sum(
            cls.pool_usage_share or 0.0
            for cls in CLIENT_REGISTRY.values()
            if cls.supports_runtime_attack
        )
        assert share >= 0.45

    def test_pool_usage_shares_match_paper(self):
        assert NtpdClient.pool_usage_share == 0.264
        assert NtpdateClient.pool_usage_share == 0.200
        assert AndroidSNTPClient.pool_usage_share == 0.140
        assert ChronyClient.pool_usage_share == 0.048
        assert OpenNTPDClient.pool_usage_share == 0.044
        assert NtpclientClient.pool_usage_share == 0.012


class TestNtpdModel:
    def test_constants(self):
        assert NTP_MINCLOCK == 3 and NTP_MAXCLOCK == 10

    def test_defaults_reflect_paper_analysis(self):
        config = NtpdClient.default_config()
        assert config.desired_associations == 6
        assert config.min_associations == NTP_MINCLOCK
        assert config.max_associations == NTP_MAXCLOCK
        assert config.runtime_dns
        assert config.act_as_server
        assert len(config.pool_domains) == 4

    def test_builds_six_associations(self, small_testbed):
        # The resolver must know about all four pool domains via the suffix.
        client = small_testbed.add_client(NtpdClient)
        client.start()
        small_testbed.run_for(30)
        assert len(client.usable_server_ips()) == 6

    def test_acts_as_server_and_leaks_refid(self, small_testbed):
        from repro.ntp.packet import NTPMode, NTPPacket, NTP_PORT

        client = small_testbed.add_client(NtpdClient)
        client.start()
        small_testbed.run_for(200)
        probe_host = small_testbed.network.add_host("probe", "198.18.0.1")
        responses = []
        socket = probe_host.bind(0)
        socket.on_datagram = lambda payload, ip, port: responses.append(NTPPacket.decode(payload))
        socket.sendto(
            NTPPacket.client_query(small_testbed.simulator.now).encode(),
            client.host.ip,
            NTP_PORT,
        )
        small_testbed.run_for(5)
        assert responses and responses[0].mode is NTPMode.SERVER
        assert responses[0].reference_id in client.usable_server_ips()


class TestSNTPModels:
    def test_systemd_caches_four_addresses_and_fails_over(self, small_testbed):
        client = small_testbed.add_client(SystemdTimesyncdClient)
        client.start()
        small_testbed.run_for(30)
        assert len(client._cached_server_list) == 4
        assert len(client.usable_server_ips()) == 1
        current = client.usable_server_ips()[0]
        # Kill the current server: the client must move to the next cached
        # address without a DNS query.
        small_testbed.pool.servers[current].socket.close()
        small_testbed.run_for(3000)
        assert client.usable_server_ips()[0] != current
        assert client.stats.runtime_dns_lookups == 0

    def test_systemd_requeries_dns_after_exhausting_cached_servers(self, small_testbed):
        client = small_testbed.add_client(SystemdTimesyncdClient)
        client.start()
        small_testbed.run_for(30)
        for address in list(client._cached_server_list):
            small_testbed.pool.servers[address].socket.close()
        small_testbed.run_for(3600 * 3)
        assert client.stats.runtime_dns_lookups >= 1

    def test_android_resolves_before_every_sync(self, small_testbed):
        small_testbed.resolver.zone_map["android.pool.ntp.org"] = small_testbed.pool_nameserver.ip
        client = small_testbed.add_client(AndroidSNTPClient)
        client.start()
        small_testbed.run_for(3600 * 4)
        assert client.stats.runtime_dns_lookups >= 3

    def test_ntpdate_steps_once_and_exits(self, small_testbed):
        client = small_testbed.add_client(NtpdateClient, initial_clock_offset=300.0)
        client.start()
        small_testbed.run_for(120)
        assert abs(client.clock_error()) < 1.0
        assert not client.started  # exited after its run duration
        polls_after_exit = client.stats.polls_sent
        small_testbed.run_for(600)
        assert client.stats.polls_sent == polls_after_exit


class TestNoRuntimeDNSModels:
    def test_openntpd_never_requeries_dns(self, small_testbed):
        client = small_testbed.add_client(OpenNTPDClient)
        client.start()
        small_testbed.run_for(30)
        for ip in client.usable_server_ips():
            small_testbed.pool.servers[ip].socket.close()
        small_testbed.run_for(3600)
        assert client.stats.runtime_dns_lookups == 0
        # Synchronisation is simply disabled; associations are retried.
        assert all(
            a.state is not AssociationState.REMOVED for a in client.associations.values()
        )

    def test_ntpclient_never_requeries_dns(self, small_testbed):
        client = small_testbed.add_client(NtpclientClient)
        client.start()
        small_testbed.run_for(30)
        for ip in client.usable_server_ips():
            small_testbed.pool.servers[ip].socket.close()
        small_testbed.run_for(3600 * 2)
        assert client.stats.runtime_dns_lookups == 0

    def test_openntpd_tls_constraint_blocks_large_boot_shift(self, small_testbed):
        """The countermeasure the paper mentions: openntpd's HTTPS constraint."""
        poisoned = small_testbed.attacker.redirect_addresses(4)
        from repro.dns.records import a_record

        small_testbed.resolver.cache.store(
            [a_record("pool.ntp.org", ip, ttl=86400) for ip in poisoned],
            small_testbed.simulator.now,
        )
        constrained = small_testbed.add_client(OpenNTPDClient)
        constrained.tls_constraint = True
        constrained.start()
        small_testbed.run_for(900)
        assert abs(constrained.clock_error()) < 10.0
        assert constrained.stats.panics >= 1
