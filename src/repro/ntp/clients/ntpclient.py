"""Model of the minimal ``ntpclient`` utility.

``ntpclient`` (the tiny SNTP client common on embedded systems) resolves its
server hostname once at start-up and then keeps polling that single address
for as long as it runs.  It never returns to DNS, so only the boot-time
attack applies; disrupting its server at run time silently disables time
synchronisation until the process is restarted (paper section V-A2).
"""

from __future__ import annotations

from repro.ntp.clients.base import BaseNTPClient, NTPClientConfig


class NtpclientClient(BaseNTPClient):
    """The ntpclient behavioural model (SNTP, DNS at start-up only)."""

    client_name = "ntpclient"
    pool_usage_share = 0.012
    supports_boot_time_attack = True
    supports_runtime_attack = False

    @classmethod
    def default_config(cls) -> NTPClientConfig:
        return NTPClientConfig(
            pool_domains=["pool.ntp.org"],
            desired_associations=1,
            min_associations=1,
            max_associations=1,
            poll_interval=600.0,
            unreachable_after=8,
            runtime_dns=False,
            remove_unreachable=False,
            sntp=True,
            step_threshold=0.0,
            step_delay=0.0,
            min_step_samples=1,
            boot_step_immediately=True,
            act_as_server=False,
        )
