"""Parallel experiment engine for paper-scale scenario sweeps.

The packages under :mod:`repro` simulate one scenario at a time; every table
of the paper is a *sweep* over a grid of scenarios (client model × attack
scenario × seed).  This package provides:

* :class:`~repro.experiments.runner.ExperimentRunner` — executes a list of
  :class:`~repro.experiments.runner.RunSpec` declarations serially or across
  worker processes (``concurrent.futures.ProcessPoolExecutor``), preserving
  declaration order and per-run wall-clock timings.
* :mod:`repro.experiments.scenarios` — a registry of named, picklable
  scenario functions (workers resolve scenarios by name, so no callables or
  classes ever cross the process boundary).
* :mod:`repro.experiments.store` — a durable, append-only run store
  (:class:`~repro.experiments.store.RunStore`): atomically-committed sweep
  manifests, fsynced JSONL segments, torn-record repair, ``fsck`` and
  compaction, and the metric-history API behind the trend-aware
  regression gate.
* :func:`~repro.experiments.runner.write_bench_json` — persists
  machine-readable timings to ``BENCH_netsim.json`` so successive PRs have a
  performance trajectory to compare against.

See ``EXPERIMENTS.md`` at the repository root for the full guide.
"""

from repro.experiments.runner import (
    ERROR_KINDS,
    CheckpointError,
    ExperimentRunner,
    RetryPolicy,
    RunOutcome,
    RunSpec,
    SweepCancelled,
    load_checkpoint,
    make_grid,
    outcomes_table,
    write_bench_json,
)
from repro.experiments.scenarios import SCENARIOS, get_scenario, scenario
from repro.experiments.store import (
    FsckReport,
    RepairEvent,
    RunStore,
    StoreError,
    SweepWriter,
    repair_segment,
    scan_records,
)
from repro.experiments.warmup import warm_worker_caches

__all__ = [
    "CheckpointError",
    "ERROR_KINDS",
    "ExperimentRunner",
    "FsckReport",
    "RepairEvent",
    "RetryPolicy",
    "RunOutcome",
    "RunSpec",
    "RunStore",
    "SCENARIOS",
    "StoreError",
    "SweepCancelled",
    "SweepWriter",
    "get_scenario",
    "load_checkpoint",
    "make_grid",
    "outcomes_table",
    "repair_segment",
    "scan_records",
    "scenario",
    "warm_worker_caches",
    "write_bench_json",
]
