"""Tests for the nameserver fragmentation scan (Figure 5 / section VII-B)."""

from repro.measurement.frag_scan import FragmentationScan, cdf_series, fragment_size_cdf
from repro.measurement.population import (
    NameserverPopulationParameters,
    NameserverSpec,
    generate_nameservers,
    generate_pool_nameservers,
)


class TestProbe:
    def test_pmtud_honouring_server_reports_fragmenting(self):
        spec = NameserverSpec(
            domain="x.example", address="101.0.0.1", supports_dnssec=False,
            honors_pmtud=True, min_fragment_size=548,
        )
        result = FragmentationScan.probe(spec)
        assert result.emits_fragments and result.min_fragment_size == 548
        assert result.attackable

    def test_pmtud_ignoring_server_never_fragments(self):
        spec = NameserverSpec(
            domain="x.example", address="101.0.0.1", supports_dnssec=False,
            honors_pmtud=False, min_fragment_size=292,
        )
        result = FragmentationScan.probe(spec)
        assert not result.emits_fragments and not result.attackable

    def test_signed_domain_not_attackable_even_if_fragmenting(self):
        spec = NameserverSpec(
            domain="signed.example", address="101.0.0.1", supports_dnssec=True,
            honors_pmtud=True, min_fragment_size=548,
        )
        assert not FragmentationScan.probe(spec).attackable


class TestFigure5:
    def test_attackable_fraction_and_cdf_shape(self):
        report = FragmentationScan(generate_nameservers()).run()
        assert abs(report.attackable_fraction - 0.0766) < 0.012
        cdf = dict(fragment_size_cdf(report))
        assert cdf[1500] == 1.0
        assert 0.85 <= cdf[548] <= 0.97
        assert 0.04 <= cdf[292] <= 0.15
        assert cdf[68] < cdf[292] < cdf[548] <= cdf[1276] <= cdf[1500]

    def test_cdf_series_monotone(self):
        report = FragmentationScan(generate_nameservers(NameserverPopulationParameters(size=2000))).run()
        sizes, fractions = cdf_series(report)
        assert list(fractions) == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_signed_fraction_about_one_percent(self):
        report = FragmentationScan(generate_nameservers()).run()
        assert 0.003 < report.dnssec_signed / report.domains_scanned < 0.02

    def test_single_signed_ntp_domain(self):
        report = FragmentationScan(generate_nameservers()).run()
        assert report.signed_ntp_domains() == ["time.cloudflare.com"]
        assert len(report.ntp_domains()) == 10


class TestPoolNameserverScan:
    def test_sixteen_of_thirty_fragment_and_none_signed(self):
        scan = FragmentationScan([])
        summary = scan.scan_pool_nameservers(generate_pool_nameservers())
        assert summary["nameservers"] == 30
        assert summary["fragment_below_548"] == 16
        assert summary["dnssec_signed"] == 0

    def test_empty_population(self):
        report = FragmentationScan([]).run()
        assert report.domains_scanned == 0
        assert report.attackable_fraction == 0.0
        assert fragment_size_cdf(report) == [(68, 0.0), (292, 0.0), (548, 0.0), (1276, 0.0), (1500, 0.0)]
