"""Section VIII-B3 — finding resolvers shared with other systems.

Reproduces the breakdown of the 18,668 web-client resolvers into web-only,
web+SMTP, open, and open+SMTP, and the resulting lower bound (>= 13.8 %) on
resolvers for which the attacker can trigger DNS queries on demand.
"""

from __future__ import annotations

from repro.measurement.population import generate_shared_resolvers
from repro.measurement.report import format_percentage, format_table
from repro.measurement.shared_resolvers import SharedResolverStudy

PAPER_BREAKDOWN = {
    "web_only": 0.862,
    "web_and_smtp": 0.113,
    "open": 0.023,
    "open_and_smtp": 0.002,
}


def run_study():
    return SharedResolverStudy(generate_shared_resolvers()).run()


def test_sec8b3_shared_resolver_breakdown(run_once):
    report = run_once(run_study)
    fractions = report.fractions()
    print()
    print(
        format_table(
            ["Category", "Measured", "Paper"],
            [
                ["only used by web clients", format_percentage(fractions["web_only"], 1), "86.2%"],
                ["used by web clients and SMTP", format_percentage(fractions["web_and_smtp"], 1), "11.3%"],
                ["open resolvers", format_percentage(fractions["open"], 1), "2.3%"],
                ["open and used by SMTP", format_percentage(fractions["open_and_smtp"], 1), "0.2%"],
                ["attacker can trigger queries", format_percentage(report.triggerable_fraction, 1), ">= 13.8%"],
            ],
            title="Section VIII-B3 — resolvers shared between web, SMTP and open access",
        )
    )
    assert report.total_resolvers == 18_668
    for key, expected in PAPER_BREAKDOWN.items():
        assert abs(fractions[key] - expected) < 0.02
    assert report.triggerable_fraction >= 0.11
