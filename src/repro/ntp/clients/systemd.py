"""Model of systemd-timesyncd.

systemd-timesyncd is an SNTP client: it synchronises to a *single* server at
a time.  The behaviours relevant to the attack (paper section V-B3):

* the default configuration names a single pool domain; a DNS lookup
  normally returns four addresses and timesyncd caches the whole list,
* when the current server stops answering, timesyncd moves on to the next
  cached address rather than re-querying DNS; only after all cached
  addresses failed does it issue a new DNS lookup — so the run-time attacker
  must remove associations to all four cached servers (probability
  ``P1(4)``),
* being an SNTP client, whatever (single) server it ends up using fully
  determines its clock: once the attacker's server is adopted, the shift is
  applied without any cross-checking.
"""

from __future__ import annotations

from repro.ntp.association import Association, AssociationState
from repro.ntp.clients.base import BaseNTPClient, NTPClientConfig


class SystemdTimesyncdClient(BaseNTPClient):
    """The systemd-timesyncd behavioural model (SNTP with a cached server list)."""

    client_name = "systemd-timesyncd"
    pool_usage_share = None  # not listed separately in the pool study
    supports_boot_time_attack = True
    supports_runtime_attack = True

    @classmethod
    def default_config(cls) -> NTPClientConfig:
        return NTPClientConfig(
            pool_domains=["pool.ntp.org"],
            desired_associations=1,
            min_associations=1,
            max_associations=1,
            poll_interval=96.0,
            unreachable_after=12,
            runtime_dns=True,
            sntp=True,
            step_threshold=0.4,
            step_delay=0.0,
            min_step_samples=1,
            boot_step_immediately=True,
            dns_cached_servers=4,
            act_as_server=False,
        )

    def _on_dns_result(self, result, domain: str, boot: bool) -> None:
        if not result.ok:
            return
        self._cached_server_list = list(result.addresses[: self.config.dns_cached_servers])
        self._use_next_cached_server(domain)

    def _use_next_cached_server(self, domain: str = "") -> None:
        """Activate the next address from the cached DNS answer, if any."""
        domain = domain or self.config.pool_domains[0]
        tried = set(self.associations)
        for address in self._cached_server_list:
            if address not in tried or (
                address in self.associations
                and self.associations[address].state is AssociationState.ACTIVE
            ):
                if address not in self.associations:
                    self.associations[address] = Association(
                        server_ip=address,
                        source_domain=domain,
                        created_at=self.simulator.now,
                    )
                    self.stats.associations_created += 1
                return

    def _on_unreachable(self, association: Association) -> None:
        association.state = AssociationState.REMOVED
        self.stats.associations_removed += 1
        remaining = [
            address
            for address in self._cached_server_list
            if address not in self.associations
            or self.associations[address].state is AssociationState.ACTIVE
        ]
        if remaining:
            self._use_next_cached_server()
        else:
            # All cached addresses exhausted: only now does timesyncd go back
            # to DNS, which is the moment the poisoned cache takes effect.
            self.trigger_runtime_dns()
