"""Tests for the open-resolver cache-snooping study (Table IV / Figure 6)."""

import numpy as np

from repro.measurement.cache_snooping import POOL_QUERY_NAMES, CacheSnoopingStudy
from repro.measurement.population import (
    PAPER_CACHED_FRACTIONS,
    OpenResolverSpec,
    ResolverPopulationParameters,
    generate_open_resolvers,
)


def make_resolver(**overrides) -> OpenResolverSpec:
    defaults = dict(
        address="100.64.0.1",
        responds=True,
        honors_rd_bit=True,
        accepts_fragments=True,
        validates_dnssec=False,
        cached_records={},
    )
    defaults.update(overrides)
    return OpenResolverSpec(**defaults)


class TestVerification:
    def test_silent_resolver_rejected(self):
        assert not CacheSnoopingStudy.verify_technique(make_resolver(responds=False))

    def test_rd_ignoring_resolver_rejected(self):
        assert not CacheSnoopingStudy.verify_technique(make_resolver(honors_rd_bit=False))

    def test_well_behaved_resolver_verified(self):
        assert CacheSnoopingStudy.verify_technique(make_resolver())


class TestProbing:
    def test_cached_record_detected(self):
        resolver = make_resolver(cached_records={"pool.ntp.org/A": 42.0})
        assert CacheSnoopingStudy.probe_rd0(resolver, "pool.ntp.org/A")
        assert not CacheSnoopingStudy.probe_rd0(resolver, "0.pool.ntp.org/A")

    def test_probe_reports_nothing_for_silent_resolver(self):
        resolver = make_resolver(responds=False, cached_records={"pool.ntp.org/A": 1.0})
        assert not CacheSnoopingStudy.probe_rd0(resolver, "pool.ntp.org/A")


class TestFullStudy:
    def test_table4_shape_reproduced(self):
        resolvers = generate_open_resolvers(ResolverPopulationParameters(size=15_000))
        report = CacheSnoopingStudy(resolvers).run()
        assert report.resolvers_verified < report.resolvers_responding < report.resolvers_probed
        for query in POOL_QUERY_NAMES:
            row = report.row(query)
            assert abs(row.cached_fraction - PAPER_CACHED_FRACTIONS[query]) < 0.05
            assert row.cached_count + row.not_cached_count == report.resolvers_verified
        # pool.ntp.org/A is the most commonly cached name, as in the paper.
        fractions = {row.query: row.cached_fraction for row in report.rows}
        assert max(fractions, key=fractions.get) == "pool.ntp.org/A"

    def test_ttl_distribution_roughly_uniform(self):
        resolvers = generate_open_resolvers(ResolverPopulationParameters(size=10_000))
        report = CacheSnoopingStudy(resolvers).run()
        counts, _ = report.ttl_histogram(bins=10)
        assert counts.sum() == len(report.observed_ttls)
        # Uniformity check: no bin deviates from the mean by more than 25 %.
        assert np.all(np.abs(counts - counts.mean()) < 0.25 * counts.mean())

    def test_fragment_acceptance_among_ntp_resolvers(self):
        resolvers = generate_open_resolvers(ResolverPopulationParameters(size=10_000))
        report = CacheSnoopingStudy(resolvers).run()
        assert abs(report.fragment_acceptance_among_ntp_resolvers() - 0.32) < 0.05

    def test_empty_population(self):
        report = CacheSnoopingStudy([]).run()
        assert report.resolvers_verified == 0
        assert all(row.cached_count == 0 for row in report.rows)

    def test_unknown_row_lookup_raises(self):
        report = CacheSnoopingStudy([]).run()
        try:
            report.row("nonexistent")
        except KeyError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("expected KeyError")
