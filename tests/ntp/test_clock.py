"""Tests for the system clock model."""

import pytest

from repro.ntp.clock import SystemClock


class TestReading:
    def test_zero_offset_tracks_true_time(self):
        clock = SystemClock()
        assert clock.time(100.0) == pytest.approx(100.0)
        assert clock.error(100.0) == pytest.approx(0.0)

    def test_constant_offset(self):
        clock = SystemClock(offset=-500.0)
        assert clock.time(1000.0) == pytest.approx(500.0)
        assert clock.error(1000.0) == pytest.approx(-500.0)

    def test_drift_accumulates(self):
        clock = SystemClock(drift_ppm=100.0, created_at=0.0)
        assert clock.error(10_000.0) == pytest.approx(1.0)


class TestAdjustments:
    def test_step(self):
        clock = SystemClock()
        clock.step(-500.0, true_time=50.0)
        assert clock.error(50.0) == pytest.approx(-500.0)
        assert clock.total_stepped() == pytest.approx(-500.0)
        assert clock.adjustments[-1].stepped

    def test_slew_is_bounded(self):
        clock = SystemClock()
        applied = clock.slew(-10.0, true_time=0.0, max_rate=0.0005)
        assert applied == pytest.approx(-0.0005)
        assert clock.error(0.0) == pytest.approx(-0.0005)

    def test_small_slew_applied_fully(self):
        clock = SystemClock()
        applied = clock.slew(0.0001, true_time=0.0)
        assert applied == pytest.approx(0.0001)

    def test_last_adjustment_time(self):
        clock = SystemClock()
        assert clock.last_adjustment_time() is None
        clock.step(1.0, true_time=42.0)
        assert clock.last_adjustment_time() == 42.0

    def test_total_stepped_ignores_slews(self):
        clock = SystemClock()
        clock.slew(0.0001, true_time=0.0)
        clock.step(-2.0, true_time=1.0)
        assert clock.total_stepped() == pytest.approx(-2.0)
