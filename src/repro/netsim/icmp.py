"""A minimal ICMP model: just enough for PMTUD abuse.

The attacker triggers fragmentation of DNS responses by sending the
nameserver an ICMP Destination Unreachable / Fragmentation Needed message
(type 3, code 4) carrying a small next-hop MTU.  Real nameserver hosts accept
such messages from anywhere because ICMP is not authenticated; the host model
records the advertised MTU in its path-MTU cache and fragments subsequent
packets to that destination accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum


class ICMPType(IntEnum):
    """ICMP message types used by the simulator."""

    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


#: Code within DEST_UNREACHABLE meaning "fragmentation needed and DF set".
FRAG_NEEDED_CODE = 4


@dataclass
class ICMPMessage:
    """An ICMP message.

    ``next_hop_mtu`` is meaningful only for fragmentation-needed messages.
    ``embedded`` optionally carries the first bytes of the offending packet,
    as real ICMP errors do; hosts that validate the embedded packet can use
    it to reject off-path forgeries (a countermeasure we model as the
    ``validates_icmp_payload`` OS profile flag).
    """

    icmp_type: ICMPType
    code: int = 0
    next_hop_mtu: int = 0
    embedded: bytes = b""
    metadata: dict = field(default_factory=dict)

    @property
    def is_frag_needed(self) -> bool:
        """True for Destination Unreachable / Fragmentation Needed."""
        return (
            self.icmp_type is ICMPType.DEST_UNREACHABLE
            and self.code == FRAG_NEEDED_CODE
        )


def frag_needed(mtu: int, embedded: bytes = b"") -> ICMPMessage:
    """Construct a Fragmentation Needed message advertising ``mtu``."""
    return ICMPMessage(
        icmp_type=ICMPType.DEST_UNREACHABLE,
        code=FRAG_NEEDED_CODE,
        next_hop_mtu=mtu,
        embedded=embedded,
    )
