"""Ones'-complement arithmetic used by IPv4, UDP and ICMP checksums.

The UDP checksum is the central obstacle the off-path attacker must clear in
the fragment-replacement attack of the paper (section III-3): the checksum
value lives in the *first* fragment, which the attacker cannot modify, so the
attacker must craft a second fragment whose ones'-complement sum equals the
sum of the original second fragment.  These helpers implement the arithmetic
exactly as RFC 1071 specifies so that the "checksum fixing" code in
:mod:`repro.core.checksum_fix` operates on real numbers rather than a mock.
"""

from __future__ import annotations


def ones_complement_sum(data: bytes) -> int:
    """Return the 16-bit ones'-complement sum of ``data``.

    Odd-length inputs are padded with a zero byte, as RFC 1071 requires.
    The result is folded so that it fits in 16 bits.
    """
    if len(data) % 2 == 1:
        data = data + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
    return fold_carries(total)


def fold_carries(total: int) -> int:
    """Fold carries above 16 bits back into the low 16 bits."""
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """Return the Internet checksum (RFC 1071) of ``data``.

    This is the ones'-complement of the ones'-complement sum.  A checksum of
    zero is transmitted as ``0xFFFF`` by UDP (zero means "no checksum"); that
    substitution is handled by the UDP layer, not here.
    """
    return (~ones_complement_sum(data)) & 0xFFFF


def add_ones_complement(left: int, right: int) -> int:
    """Add two 16-bit values using ones'-complement addition."""
    return fold_carries((left & 0xFFFF) + (right & 0xFFFF))


def sub_ones_complement(left: int, right: int) -> int:
    """Subtract ``right`` from ``left`` using ones'-complement arithmetic.

    Subtraction is addition of the ones'-complement (bit inverse) of the
    subtrahend.  This is the operation the attacker uses to compute the
    correction that must be applied to the sacrificial bytes of the spoofed
    second fragment.
    """
    return add_ones_complement(left, (~right) & 0xFFFF)


def verify_checksum(data: bytes) -> bool:
    """Return True when ``data`` (which embeds its checksum field) verifies.

    For a packet whose checksum field already contains the transmitted
    checksum, the ones'-complement sum over the whole packet must be
    ``0xFFFF``.
    """
    return ones_complement_sum(data) == 0xFFFF
