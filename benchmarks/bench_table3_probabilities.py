"""Table III — probability that a client is in a vulnerable state.

Regenerates P1(n) and P2(m, n) for m = 1..9 with p_rate = 38 % (the measured
rate-limiting prevalence), checks the values against the published table, and
cross-checks the closed forms with Monte-Carlo simulation.

Since the experiment-engine port the table is produced by the
``table3_probabilities`` scenario through
:class:`repro.experiments.ExperimentRunner`, and the Monte-Carlo column uses
the vectorised shared-matrix estimator
(:func:`repro.core.probability.monte_carlo_table3`): one ``(trials, 9)``
draw reused across every row instead of a fresh matrix per cell.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentRunner, RunSpec
from repro.measurement.report import format_table

#: Paper Table III (percent).
PAPER_TABLE3 = {
    1: (1, 38.0, 38.0),
    2: (2, 14.4, 14.4),
    3: (2, 14.4, 32.4),
    4: (3, 5.5, 15.7),
    5: (3, 5.5, 28.4),
    6: (4, 2.1, 15.3),
    7: (5, 0.8, 7.8),
    8: (6, 0.3, 3.9),
    9: (7, 0.1, 1.8),
}


def build_table3():
    runner = ExperimentRunner(max_workers=1)
    outcomes = runner.run(
        [RunSpec.make("table3_probabilities", trials=200_000)]
    )
    assert outcomes[0].ok, outcomes[0].error
    return outcomes[0].result["rows"]


def test_table3_probabilities(run_once):
    rows = run_once(build_table3)
    print()
    print(
        format_table(
            ["m", "n", "P1(n)", "P2(m,n)", "P1 (paper)", "P2 (paper)", "P1 (MC)", "P2 (MC)"],
            [
                [
                    row["m"],
                    row["n"],
                    f"{row['p1'] * 100:.1f}%",
                    f"{row['p2'] * 100:.1f}%",
                    f"{PAPER_TABLE3[row['m']][1]:.1f}%",
                    f"{PAPER_TABLE3[row['m']][2]:.1f}%",
                    f"{row['mc_p1'] * 100:.1f}%",
                    f"{row['mc_p2'] * 100:.1f}%",
                ]
                for row in rows
            ],
            title="Table III — vulnerable-state probabilities (p_rate = 38%)",
        )
    )
    for row in rows:
        n_expected, p1_expected, p2_expected = PAPER_TABLE3[row["m"]]
        assert row["n"] == n_expected
        assert row["p1"] * 100 == pytest.approx(p1_expected, abs=0.06)
        assert row["p2"] * 100 == pytest.approx(p2_expected, abs=0.06)
        assert row["mc_p1"] == pytest.approx(row["p1"], abs=0.005)
        assert row["mc_p2"] == pytest.approx(row["p2"], abs=0.005)


def test_table3_p_rate_ablation(run_once):
    """Ablation: how the success probabilities scale with rate-limiting prevalence."""
    from repro.core.probability import table3_rows

    def sweep():
        return {p: table3_rows(m_values=[6], p_rate=p)[0] for p in (0.2, 0.38, 0.6, 0.8)}

    rows = run_once(sweep)
    print()
    print(
        format_table(
            ["p_rate", "P1(4)", "P2(6,4)"],
            [[p, f"{row.p1*100:.1f}%", f"{row.p2*100:.1f}%"] for p, row in rows.items()],
            title="Ablation — ntpd default (m=6) vs rate-limiting prevalence",
        )
    )
    values = [row.p2 for row in rows.values()]
    assert values == sorted(values)
