"""Table II — run-time attack duration against different clients.

The paper's lab measurements: ntpd/P2 47 min, ntpd/P1 17 min, "openntpd"/P1
84 min (a row we reproduce with the slow SNTP failover behaviour of
systemd-timesyncd, see DESIGN.md), chrony/P1 57 min.  The benchmark replays
the same experiment — a synchronised client, a directly poisoned resolver,
and the rate-limit-abuse association removal — with the default client models
and reports the measured durations.  Absolute values depend on the documented
model parameters; the ordering (P1 < P2 < chrony < slowest SNTP failover) is
the reproduced shape.

Since the experiment-engine port, the four scenarios are declared as a
:class:`repro.experiments.RunSpec` sweep and executed by
:class:`repro.experiments.ExperimentRunner` — in parallel worker processes
when the machine has the cores for it.  Each run builds its own simulator
from its own seed, so the results are bit-identical to the sequential
implementation this benchmark replaced.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentRunner, RunSpec
from repro.measurement.report import format_table

#: Paper Table II, minutes.
PAPER_TABLE2 = {
    ("ntpd", "P2"): 47.0,
    ("ntpd", "P1"): 17.0,
    ("openntpd*", "P1"): 84.0,
    ("chrony", "P1"): 57.0,
}

SPECS = [
    RunSpec.make("table2_runtime_attack", client=client, attack=attack, seed=5)
    for client, attack in (
        ("ntpd", "P2"),
        ("ntpd", "P1"),
        ("openntpd*", "P1"),
        ("chrony", "P1"),
    )
]


def run_table2(max_workers: int | None = None):
    """Execute the Table II sweep and return the result rows."""
    runner = ExperimentRunner(max_workers=max_workers or os.cpu_count())
    outcomes = runner.run(SPECS)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    assert not failures, failures
    return [outcome.result for outcome in outcomes]


def test_table2_runtime_attack_durations(run_once):
    rows = run_once(run_table2)
    print()
    print(
        format_table(
            ["Client", "Scenario", "Success", "Measured (min)", "Paper (min)", "Shift (s)"],
            [
                [
                    r["label"],
                    r["scenario"],
                    r["success"],
                    None if r["minutes"] is None else round(r["minutes"], 1),
                    PAPER_TABLE2[(r["label"], r["scenario"])],
                    round(r["shift"], 1),
                ]
                for r in rows
            ],
            title="Table II — run-time attack duration",
        )
    )
    results = {(r["label"], r["scenario"]): r for r in rows}
    # Every attack succeeds and applies the -500 s shift.
    for row in rows:
        assert row["success"], row
        assert row["shift"] == pytest.approx(-500.0, abs=5.0)
    # Shape: P1 against ntpd is the fastest, P2 is markedly slower, chrony is
    # slower than ntpd/P2, and the SNTP sequential-failover row is slowest.
    ntpd_p1 = results[("ntpd", "P1")]["minutes"]
    ntpd_p2 = results[("ntpd", "P2")]["minutes"]
    chrony = results[("chrony", "P1")]["minutes"]
    slowest = results[("openntpd*", "P1")]["minutes"]
    assert ntpd_p1 < ntpd_p2 < chrony < slowest
    # Durations are in the tens-of-minutes regime the paper reports.
    assert 5 <= ntpd_p1 <= 35
    assert 20 <= ntpd_p2 <= 70
    assert 30 <= chrony <= 90
    assert 45 <= slowest <= 120


def test_table2_parallel_matches_serial():
    """The engine's process fan-out must not perturb any result bit."""
    serial = run_table2(max_workers=1)
    parallel = run_table2(max_workers=max(2, os.cpu_count() or 2))
    assert serial == parallel
