"""Durable, append-only experiment run store: manifests + JSONL segments.

Population-scale sweeps run for hours and die in ugly ways — worker
crashes, host stalls, ``kill -9`` mid-write.  This module is the data plane
that survives all of them.  A *sweep* lives in its own directory under the
store root:

.. code-block:: text

    <root>/
      <sweep-id>/
        MANIFEST.json        # spec list, seed, git rev, fault plan, status
        segment-0001.jsonl   # append-only records, fsynced per line
        segment-0002.jsonl   # one new segment per resume (or size roll)

Durability contract:

* **Manifests commit atomically** — written to a temp file in the same
  directory, fsynced, then ``os.replace``'d into place (plus a directory
  fsync), so a manifest is either the old document or the new one, never a
  half-written hybrid.
* **Records append with ``flush`` + ``fsync``** — a sweep killed at any
  instant loses at most the single line being written.
* **Torn and corrupt records are repairable, anywhere in a segment** — not
  just the tail.  :func:`scan_records` tolerates a torn final line (kill
  mid-write), undecodable lines mid-file (disk corruption), and
  NUL-padded holes (filesystem truncation after a crash); every skipped
  line is reported as a :class:`RepairEvent`, and :func:`repair_segment`
  rewrites the segment without them (valid lines are preserved
  byte-for-byte, so repaired records stay bit-identical).
* **``fsck`` validates the whole store** — manifest schemas, record
  decodability, and (for sweeps with a recorded spec list) that every
  outcome record matches the manifest's spec at its index.  With
  ``repair=True`` it rewrites damaged segments, drops stale temp files and
  empty segments, and the store comes back clean.
* **Compaction folds a sweep's segments into one** — outcome records
  dedupe by spec index (last write wins, matching loader semantics); the
  merged segment is written and renamed before the old segments are
  unlinked, so a crash mid-compaction leaves duplicates (harmless), never
  data loss.

The runner writes through this store via
:meth:`repro.experiments.runner.ExperimentRunner.run_stored`;
``benchmarks/check_regression.py --history`` reads metric history out of it
for the trend-aware gate, and :mod:`repro.measurement.report` renders
sweep/trend reports from its query APIs.

Run ``python -m repro.experiments.store fsck <root>`` (also: ``compact``,
``report``) for the command-line surface; ``make store-fsck`` wraps it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

#: Store layout / record schema version, recorded in every manifest.
STORE_SCHEMA = "repro-store/1"

MANIFEST_NAME = "MANIFEST.json"
SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".jsonl"

#: Segment size at which :class:`SweepWriter` rolls to a fresh file.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024


class StoreError(RuntimeError):
    """The run store is missing, corrupt beyond repair, or misused."""


# --------------------------------------------------------------- metric types
@dataclass(frozen=True)
class MetricType:
    """Schema for one named metric: unit and comparison direction.

    Replaces the old convention where a metric was "whatever dotted name
    holds a float" and every consumer hard-coded which direction is an
    improvement.  The regression gate reads ``higher_is_better`` instead of
    assuming throughput semantics, so latency-style metrics (seconds per
    run) gate correctly the moment they are registered.
    """

    name: str
    unit: str = ""
    higher_is_better: bool = True
    description: str = ""

    def to_document(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "description": self.description,
        }


#: Process-wide registry of metric schemas, keyed by metric name.
METRIC_TYPES: dict[str, MetricType] = {}


def register_metric(
    name: str,
    unit: str = "",
    higher_is_better: bool = True,
    description: str = "",
) -> MetricType:
    """Register (or redefine) the schema for a named metric."""
    metric = MetricType(
        name=name,
        unit=unit,
        higher_is_better=higher_is_better,
        description=description,
    )
    METRIC_TYPES[name] = metric
    return metric


def metric_type(name: str) -> MetricType:
    """The registered schema for ``name``.

    Unregistered names fall back to throughput semantics
    (``higher_is_better=True``, no unit) — the behaviour every consumer
    hard-coded before metric types existed — so the gate stays safe on
    metrics recorded by older harness versions.
    """
    return METRIC_TYPES.get(name) or MetricType(name=name)


# ----------------------------------------------------------------- primitives
def _fsync_dir(path: str) -> None:
    """Flush directory metadata (new/renamed files) to disk, best effort."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: str, document: dict) -> None:
    """Commit ``document`` to ``path`` via write-temp + fsync + rename."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")


def git_revision() -> Optional[str]:
    """The repository HEAD revision, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


@dataclass(frozen=True)
class RepairEvent:
    """One unreadable record found (and possibly dropped) in a segment."""

    path: str
    line_number: int
    #: ``torn-tail`` (kill mid-write), ``corrupt-record`` (undecodable
    #: line mid-file, including NUL-padded truncation holes), or
    #: ``not-an-object`` (valid JSON that is not a record).
    reason: str
    fragment: str

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line_number}: {self.reason} "
            f"({self.fragment[:60]!r})"
        )


def _scan(path: str) -> tuple[list[dict], list[bytes], list[RepairEvent]]:
    """Parse a segment into (records, their raw lines, repair events)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], [], []
    records: list[dict] = []
    raw: list[bytes] = []
    repairs: list[RepairEvent] = []
    if not data:
        return records, raw, repairs
    torn = not data.endswith(b"\n")
    lines = data.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    for number, line in enumerate(lines, start=1):
        stripped = line.strip(b" \t\r\x00")
        if not stripped:
            if b"\x00" in line:
                repairs.append(
                    RepairEvent(path, number, "corrupt-record", "<NUL hole>")
                )
            continue
        is_tail = torn and number == len(lines)
        try:
            record = json.loads(stripped)
        except (json.JSONDecodeError, UnicodeDecodeError):
            fragment = stripped[:60].decode("utf-8", "replace")
            reason = "torn-tail" if is_tail else "corrupt-record"
            repairs.append(RepairEvent(path, number, reason, fragment))
            continue
        if is_tail:
            # A final line without its newline may still parse (the kill
            # landed between write and flush of the terminator) — keep the
            # record but normalise the terminator on repair.
            repairs.append(
                RepairEvent(path, number, "torn-tail", "<missing newline>")
            )
            if isinstance(record, dict):
                records.append(record)
                raw.append(stripped + b"\n")
            continue
        if not isinstance(record, dict):
            repairs.append(
                RepairEvent(
                    path,
                    number,
                    "not-an-object",
                    stripped[:60].decode("utf-8", "replace"),
                )
            )
            continue
        records.append(record)
        raw.append(line + b"\n")
    return records, raw, repairs


def scan_records(path: str) -> tuple[list[dict], list[RepairEvent]]:
    """Read every salvageable record from a segment, reporting the damage.

    Tolerates — and reports — corruption *anywhere* in the file: a torn
    final line, undecodable lines mid-file, NUL-padded truncation holes,
    and non-object JSON lines.  A missing file reads as empty.
    """
    records, _raw, repairs = _scan(path)
    return records, repairs


def repair_segment(path: str) -> list[RepairEvent]:
    """Rewrite ``path`` without its damaged lines; returns what was dropped.

    Valid lines are preserved byte-for-byte (no re-serialisation), so the
    surviving records stay bit-identical.  The rewrite goes through a temp
    file + rename so a crash mid-repair cannot make the damage worse.  A
    clean segment is left untouched.
    """
    records, raw, repairs = _scan(path)
    if not repairs:
        return []
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.writelines(raw)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")
    return repairs


def spec_document(spec: Any) -> dict[str, Any]:
    """The JSON shape a :class:`~repro.experiments.runner.RunSpec` takes."""
    return {
        "scenario": spec.scenario,
        "params": [[name, value] for name, value in spec.params],
    }


def spec_from_document(document: dict[str, Any]) -> Any:
    """Rebuild a :class:`~repro.experiments.runner.RunSpec` from JSON."""
    from repro.experiments.runner import RunSpec

    return RunSpec(
        scenario=document["scenario"],
        params=tuple((name, value) for name, value in document["params"]),
    )


def outcome_document(index: int, outcome: Any) -> dict[str, Any]:
    """The JSON record shape of one finished run (checkpoint- and
    store-compatible)."""
    entry = {
        "index": index,
        "spec": spec_document(outcome.spec),
        "result": outcome.result,
        "wall_time": outcome.wall_time,
        "error": outcome.error,
        "error_kind": outcome.error_kind,
        "attempts": outcome.attempts,
    }
    if outcome.stage_stats is not None:
        entry["stage_stats"] = outcome.stage_stats
    return entry


# -------------------------------------------------------------------- reports
@dataclass
class FsckReport:
    """What an :meth:`RunStore.fsck` pass found (and fixed, under repair)."""

    sweeps: int = 0
    segments: int = 0
    records: int = 0
    #: Damaged lines found; under ``repair=True`` these were dropped and
    #: the segments rewritten.
    repaired: list[RepairEvent] = field(default_factory=list)
    #: Unrepairable problems: unreadable manifests, records whose spec
    #: contradicts the manifest, out-of-range indices.
    errors: list[str] = field(default_factory=list)
    #: Stale temp files / empty segments removed (repair mode only).
    removed_files: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing unrepairable was found.

        Torn/corrupt records are expected crash damage — the loaders skip
        them and ``repair=True`` removes them — so they do not fail fsck.
        """
        return not self.errors

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.errors)} error(s)"
        return (
            f"fsck: {self.sweeps} sweep(s), {self.segments} segment(s), "
            f"{self.records} record(s), {len(self.repaired)} damaged "
            f"line(s), {len(self.removed_files)} file(s) removed — {status}"
        )


@dataclass
class CompactionReport:
    """Before/after accounting for one :meth:`RunStore.compact` pass."""

    sweep_id: str
    segments_before: int = 0
    segments_after: int = 0
    records_before: int = 0
    records_after: int = 0

    def summary(self) -> str:
        return (
            f"compacted {self.sweep_id}: {self.segments_before} -> "
            f"{self.segments_after} segment(s), {self.records_before} -> "
            f"{self.records_after} record(s)"
        )


# ------------------------------------------------------------------ the store
class RunStore:
    """A directory of sweeps, each a manifest plus append-only segments."""

    def __init__(self, root: str, segment_bytes: int = DEFAULT_SEGMENT_BYTES) -> None:
        if segment_bytes < 1:
            raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.root = root
        self.segment_bytes = segment_bytes
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------- locations
    def sweep_dir(self, sweep_id: str) -> str:
        if not sweep_id or os.sep in sweep_id or sweep_id in (".", ".."):
            raise StoreError(f"invalid sweep id {sweep_id!r}")
        return os.path.join(self.root, sweep_id)

    def _manifest_path(self, sweep_id: str) -> str:
        return os.path.join(self.sweep_dir(sweep_id), MANIFEST_NAME)

    def _segment_paths(self, sweep_id: str) -> list[str]:
        directory = self.sweep_dir(sweep_id)
        try:
            names = os.listdir(directory)
        except FileNotFoundError:
            return []
        segments = [
            name
            for name in names
            if name.startswith(SEGMENT_PREFIX)
            and name.endswith(SEGMENT_SUFFIX)
            and ".tmp." not in name
        ]
        return [os.path.join(directory, name) for name in sorted(segments)]

    def sweeps(self) -> list[str]:
        """Sweep ids present in the store (directories with a manifest)."""
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        return sorted(
            name
            for name in names
            if os.path.isfile(os.path.join(self.root, name, MANIFEST_NAME))
        )

    # ------------------------------------------------------------- manifests
    def manifest(self, sweep_id: str) -> dict[str, Any]:
        """The sweep's manifest document (raises :class:`StoreError`)."""
        path = self._manifest_path(sweep_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            raise StoreError(f"sweep {sweep_id!r} has no manifest at {path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"manifest {path} is unreadable: {exc}") from exc
        if not isinstance(document, dict):
            raise StoreError(f"manifest {path} is not a JSON object")
        return document

    def _update_manifest(self, sweep_id: str, **fields: Any) -> dict[str, Any]:
        document = self.manifest(sweep_id)
        document.update(fields)
        atomic_write_json(self._manifest_path(sweep_id), document)
        return document

    def specs(self, sweep_id: str) -> list[Any]:
        """The sweep's declared :class:`RunSpec` list, from its manifest."""
        documents = self.manifest(sweep_id).get("specs")
        if documents is None:
            raise StoreError(
                f"sweep {sweep_id!r} recorded no spec list; pass specs explicitly"
            )
        return [spec_from_document(document) for document in documents]

    # --------------------------------------------------------------- writing
    def begin_sweep(
        self,
        name: str,
        specs: Optional[Sequence[Any]] = None,
        *,
        sweep_id: Optional[str] = None,
        seed: Optional[int] = None,
        fault_plan: Optional[Any] = None,
        metadata: Optional[dict[str, Any]] = None,
    ) -> "SweepWriter":
        """Create a sweep: commit its manifest, open its first segment.

        The manifest freezes everything needed to reproduce or resume the
        sweep — the full spec list, the seed, the fault plan, the git
        revision — and lands atomically before the first record is
        written.  An existing sweep id is refused (:meth:`open_sweep`
        continues one).
        """
        if sweep_id is None:
            sweep_id = f"{name}-{time.strftime('%Y%m%dT%H%M%S')}-{os.getpid()}"
        directory = self.sweep_dir(sweep_id)
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            raise StoreError(
                f"sweep {sweep_id!r} already exists; open_sweep() continues it"
            )
        os.makedirs(directory, exist_ok=True)
        manifest = {
            "schema": STORE_SCHEMA,
            "sweep_id": sweep_id,
            "name": name,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "git_revision": git_revision(),
            "python": platform.python_version(),
            "status": "running",
            "seed": seed,
            "fault_plan": fault_plan,
            "metadata": metadata or {},
            "specs": None if specs is None else [spec_document(s) for s in specs],
        }
        atomic_write_json(os.path.join(directory, MANIFEST_NAME), manifest)
        return SweepWriter(self, sweep_id)

    def open_sweep(self, sweep_id: str) -> "SweepWriter":
        """Continue an existing sweep, appending into a fresh segment.

        A new segment per open means a resume never appends to a file a
        crash may have damaged — the damaged tail stays where it is (the
        loaders skip it; ``fsck --repair`` removes it).
        """
        self.manifest(sweep_id)  # validates existence
        return SweepWriter(self, sweep_id)

    def finish_sweep(self, sweep_id: str, status: str = "complete") -> None:
        """Atomically mark the sweep's terminal status in its manifest."""
        self._update_manifest(
            sweep_id,
            status=status,
            finished_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        )

    # --------------------------------------------------------------- reading
    def records(
        self, sweep_id: str, repairs: Optional[list[RepairEvent]] = None
    ) -> list[dict[str, Any]]:
        """Every salvageable record, in append order across segments.

        Damage is skipped, never fatal; pass ``repairs`` to receive the
        :class:`RepairEvent` for each skipped line.
        """
        out: list[dict[str, Any]] = []
        for path in self._segment_paths(sweep_id):
            found, events = scan_records(path)
            out.extend(found)
            if repairs is not None:
                repairs.extend(events)
        return out

    def load_outcomes(
        self,
        sweep_id: str,
        specs: Optional[Sequence[Any]] = None,
        repairs: Optional[list[RepairEvent]] = None,
    ) -> dict[int, Any]:
        """Outcome records as ``{spec index: RunOutcome}``, validated.

        Semantics match :func:`repro.experiments.runner.load_checkpoint`:
        indices must be in range, recorded specs must equal the declared
        ones (a mismatch means the records belong to a different sweep and
        raises), later records win over earlier ones (retries, resumes).
        ``specs=None`` uses the manifest's spec list.
        """
        from repro.experiments.runner import RunOutcome

        if specs is None:
            specs = self.specs(sweep_id)
        specs = list(specs)
        expected = [
            json.loads(json.dumps(spec_document(spec))) for spec in specs
        ]
        done: dict[int, Any] = {}
        for entry in self.records(sweep_id, repairs=repairs):
            if "index" not in entry:
                continue  # generic (non-outcome) record
            index = entry.get("index")
            if not isinstance(index, int) or not 0 <= index < len(specs):
                raise StoreError(
                    f"sweep {sweep_id!r}: record index {index!r} out of range "
                    f"for a sweep of {len(specs)} specs"
                )
            if entry.get("spec") != expected[index]:
                raise StoreError(
                    f"sweep {sweep_id!r}: recorded spec {entry.get('spec')!r} "
                    f"does not match {specs[index].label} — these records "
                    "belong to a different sweep"
                )
            done[index] = RunOutcome(
                spec=specs[index],
                result=entry.get("result"),
                wall_time=entry.get("wall_time", 0.0),
                error=entry.get("error"),
                stage_stats=entry.get("stage_stats"),
                error_kind=entry.get("error_kind"),
                attempts=entry.get("attempts", 1),
            )
        return done

    def kind_records(
        self,
        sweep_id: str,
        kind: str,
        repairs: Optional[list[RepairEvent]] = None,
    ) -> list[dict[str, Any]]:
        """Free-form records of one ``kind``, in append order.

        Campaign drivers tag their derived records (phase aggregates,
        summaries) with a ``kind`` key; this filters them out of the mixed
        outcome/record stream without the caller re-implementing the scan.
        """
        return [
            record
            for record in self.records(sweep_id, repairs=repairs)
            if "index" not in record and record.get("kind") == kind
        ]

    def metric_history(
        self, sweep_id: str, metric: str, limit: Optional[int] = None
    ) -> list[float]:
        """Numeric values of ``record["metrics"][metric]`` in append order.

        The trend-aware regression gate reads its rolling window through
        this (most recent last; ``limit`` keeps the tail).
        """
        values = [
            float(value)
            for record in self.records(sweep_id)
            for value in [(record.get("metrics") or {}).get(metric)]
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        ]
        if limit is not None and limit >= 0:
            values = values[len(values) - limit :] if limit else []
        return values

    # ------------------------------------------------------- fsck/compaction
    def fsck(self, repair: bool = False) -> FsckReport:
        """Validate every sweep; with ``repair`` rewrite the damage away.

        Checks manifest readability and schema, scans every segment for
        torn/corrupt records, and — when the manifest froze a spec list —
        cross-checks each outcome record against it.  Repair mode drops
        damaged lines (byte-preserving rewrite), removes stale ``.tmp.``
        files and empty segments.
        """
        report = FsckReport()
        for sweep_id in self.sweeps():
            report.sweeps += 1
            directory = self.sweep_dir(sweep_id)
            try:
                manifest = self.manifest(sweep_id)
                schema = manifest.get("schema")
                if schema != STORE_SCHEMA:
                    report.errors.append(
                        f"{sweep_id}: manifest schema {schema!r} is not "
                        f"{STORE_SCHEMA!r}"
                    )
                    manifest = None
            except StoreError as exc:
                report.errors.append(str(exc))
                manifest = None
            if repair:
                for name in os.listdir(directory):
                    path = os.path.join(directory, name)
                    if ".tmp." in name:
                        os.unlink(path)
                        report.removed_files.append(path)
            for path in self._segment_paths(sweep_id):
                report.segments += 1
                if repair:
                    events = repair_segment(path)
                    records, _post = scan_records(path)
                else:
                    records, events = scan_records(path)
                report.repaired.extend(events)
                report.records += len(records)
                if repair and os.path.getsize(path) == 0:
                    os.unlink(path)
                    report.removed_files.append(path)
                    report.segments -= 1
            if manifest is not None and manifest.get("specs") is not None:
                try:
                    self.load_outcomes(sweep_id)
                except StoreError as exc:
                    report.errors.append(str(exc))
        return report

    def compact(self, sweep_id: str) -> CompactionReport:
        """Fold all segments into one, deduping outcome records by index.

        Later records win (the loaders' rule), so a compacted sweep loads
        identically to the uncompacted one.  The merged segment is
        committed (write + fsync + rename) *before* the old segments are
        unlinked: a crash mid-compaction leaves duplicate records — which
        dedupe away on the next load or compaction — never missing ones.
        """
        paths = self._segment_paths(sweep_id)
        report = CompactionReport(sweep_id, segments_before=len(paths))
        by_index: dict[int, int] = {}
        merged: list[Optional[bytes]] = []
        for path in paths:
            records, raw, _events = _scan(path)
            for record, line in zip(records, raw):
                report.records_before += 1
                index = record.get("index")
                if isinstance(index, int):
                    previous = by_index.get(index)
                    if previous is not None:
                        merged[previous] = None  # superseded: later wins
                    by_index[index] = len(merged)
                merged.append(line)
        lines = [line for line in merged if line is not None]
        report.records_after = len(lines)
        if not paths:
            return report
        directory = self.sweep_dir(sweep_id)
        target = os.path.join(
            directory,
            f"{SEGMENT_PREFIX}{_next_segment_index(paths):04d}{SEGMENT_SUFFIX}",
        )
        tmp = f"{target}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.writelines(lines)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        _fsync_dir(directory)
        for path in paths:
            os.unlink(path)
        _fsync_dir(directory)
        report.segments_after = 1
        return report


def _next_segment_index(paths: Sequence[str]) -> int:
    highest = 0
    for path in paths:
        name = os.path.basename(path)
        digits = name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
        try:
            highest = max(highest, int(digits))
        except ValueError:
            continue
    return highest + 1


class SweepWriter:
    """Fsynced append-only record sink for one sweep (one open segment).

    Opens a *new* segment (next index) rather than appending to the last
    one, so a resume never writes after a possibly-damaged tail.  Rolls to
    a fresh segment when the current one crosses the store's
    ``segment_bytes``.  Implements the runner's checkpoint-writer protocol
    (``append(index, outcome)`` / ``close()``) so sweeps write through the
    store exactly as they would through a plain checkpoint file.
    """

    def __init__(self, store: RunStore, sweep_id: str) -> None:
        self.store = store
        self.sweep_id = sweep_id
        self._directory = store.sweep_dir(sweep_id)
        self._handle = None
        self._open_segment()

    def _open_segment(self) -> None:
        index = _next_segment_index(self.store._segment_paths(self.sweep_id))
        self.path = os.path.join(
            self._directory, f"{SEGMENT_PREFIX}{index:04d}{SEGMENT_SUFFIX}"
        )
        try:
            self._handle = open(self.path, "ab")
        except OSError as exc:
            raise StoreError(f"cannot open segment {self.path!r}: {exc}") from exc
        _fsync_dir(self._directory)

    def append_record(self, record: dict[str, Any]) -> None:
        """Durably append one JSON record (flush + fsync per line)."""
        if self._handle is None:
            raise StoreError(f"sweep {self.sweep_id!r} writer is closed")
        try:
            line = json.dumps(record).encode("utf-8") + b"\n"
        except (TypeError, ValueError) as exc:
            raise StoreError(
                f"record is not JSON-serialisable (the store holds only "
                f"JSON-safe documents): {exc}"
            ) from exc
        if self._handle.tell() and self._handle.tell() + len(line) > (
            self.store.segment_bytes
        ):
            self._handle.close()
            self._open_segment()
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, index: int, outcome: Any) -> None:
        """Checkpoint-writer protocol: append one finished run outcome."""
        self.append_record(outcome_document(index, outcome))

    def append_aggregate(
        self,
        cell: dict[str, Any],
        aggregate: dict[str, Any],
        kind: str = "population-aggregate",
    ) -> None:
        """Durably append one streaming-aggregate record.

        Population-scale sweeps fold thousands of per-client results into
        constant-memory aggregates (counts + fixed-bin histograms; see
        :mod:`repro.population.aggregate`) instead of carrying per-run dict
        payloads.  ``cell`` identifies the sweep cell the aggregate covers
        (e.g. the landscape axes values); the record has no ``index`` so
        outcome loaders skip it and ``sweep_report`` counts it as a metric
        sample.
        """
        self.append_record({"kind": kind, "cell": cell, "aggregate": aggregate})

    def finish(self, status: str = "complete") -> None:
        """Close the segment and atomically stamp the terminal status."""
        self.close()
        self.store.finish_sweep(self.sweep_id, status)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ------------------------------------------------------------------------ CLI
def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.experiments.store`` — fsck / compact / report."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.store", description=__doc__.split("\n\n")[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fsck_cmd = commands.add_parser("fsck", help="validate (and repair) a store")
    fsck_cmd.add_argument("root", help="store root directory")
    fsck_cmd.add_argument(
        "--repair", action="store_true", help="rewrite damaged segments"
    )
    fsck_cmd.add_argument(
        "--allow-missing",
        action="store_true",
        help="exit 0 when the store root does not exist",
    )

    compact_cmd = commands.add_parser(
        "compact", help="fold a sweep's segments into one"
    )
    compact_cmd.add_argument("root")
    compact_cmd.add_argument("sweep_id")

    report_cmd = commands.add_parser(
        "report", help="list sweeps, or render one sweep's run table"
    )
    report_cmd.add_argument("root")
    report_cmd.add_argument("sweep_id", nargs="?", default=None)

    args = parser.parse_args(argv)
    if not os.path.isdir(args.root):
        if args.command == "fsck" and args.allow_missing:
            print(f"no store at {args.root}; nothing to check")
            return 0
        print(f"error: no store at {args.root}", flush=True)
        return 2

    store = RunStore(args.root)
    if args.command == "fsck":
        report = store.fsck(repair=args.repair)
        for event in report.repaired:
            verb = "dropped" if args.repair else "found"
            print(f"  {verb}: {event}")
        for path in report.removed_files:
            print(f"  removed: {path}")
        for error in report.errors:
            print(f"  ERROR: {error}")
        print(report.summary())
        return 0 if report.ok else 1
    if args.command == "compact":
        try:
            print(store.compact(args.sweep_id).summary())
        except StoreError as exc:
            print(f"error: {exc}")
            return 2
        return 0
    # report
    from repro.measurement.report import sweep_report

    if args.sweep_id is None:
        for sweep_id in store.sweeps():
            manifest = store.manifest(sweep_id)
            count = len(store.records(sweep_id))
            print(
                f"{sweep_id}: {manifest.get('name')} "
                f"[{manifest.get('status')}] {count} record(s)"
            )
        return 0
    try:
        print(sweep_report(store.manifest(args.sweep_id), store.records(args.sweep_id)))
    except StoreError as exc:
        print(f"error: {exc}")
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
