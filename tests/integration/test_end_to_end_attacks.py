"""End-to-end integration tests: the full attack chains of the paper.

These tests exercise every layer at once — simulator, IP fragmentation, DNS
resolution, NTP clients and the attack orchestration — for the three headline
scenarios (boot-time, run-time, Chronos) plus the honest baseline.
"""

import pytest

from repro.core.boot_time import BootTimeAttack
from repro.core.chronos_attack import ChronosAttack
from repro.core.run_time import RunTimeAttack, RunTimeScenario
from repro.ntp.chronos.client import ChronosConfig
from repro.ntp.chronos.pool_generation import PoolGenerationConfig
from repro.ntp.clients import NtpdClient, SystemdTimesyncdClient
from repro.testbed import NAMESERVER_IP, TestbedConfig, build_testbed


class TestHonestBaseline:
    def test_all_client_models_synchronise_without_an_attacker(self):
        testbed = build_testbed(TestbedConfig(pool_size=32, seed=71))
        from repro.ntp.clients import CLIENT_REGISTRY

        clients = []
        for name, cls in CLIENT_REGISTRY.items():
            config = cls.default_config()
            config.pool_domains = ["pool.ntp.org"]
            clients.append(testbed.add_client(cls, config=config, initial_clock_offset=5.0))
        for client in clients:
            client.start()
        testbed.run_for(1200)
        for client in clients:
            assert abs(client.clock_error()) < 1.0, client.client_name


class TestBootTimeEndToEnd:
    def test_fragmentation_poisoning_plus_boot_shifts_the_clock(self):
        testbed = build_testbed(TestbedConfig(pool_size=32, seed=72, pool_rotation="fixed"))
        attack = BootTimeAttack(
            attacker=testbed.attacker,
            simulator=testbed.simulator,
            resolver=testbed.resolver,
            nameserver_ip=NAMESERVER_IP,
            target_mtu=68,
        )
        attack.launch_poisoning()
        testbed.run_for(10)
        victim = testbed.add_client(SystemdTimesyncdClient)
        result = attack.evaluate(victim, observation_period=400)
        assert result.success
        assert result.clock_shift_achieved == pytest.approx(-500.0, abs=5.0)
        # The attacker never observed victim traffic: no capture was attached.
        assert testbed.attacker.stats.spoofed_fragments_sent > 0

    def test_poisoning_expires_and_client_recovers_on_next_boot(self):
        testbed = build_testbed(TestbedConfig(pool_size=32, seed=73, pool_rotation="fixed"))
        attack = BootTimeAttack(
            attacker=testbed.attacker,
            simulator=testbed.simulator,
            resolver=testbed.resolver,
            nameserver_ip=NAMESERVER_IP,
        )
        poisoner = attack.launch_poisoning()
        testbed.run_for(10)
        victim = testbed.add_client(SystemdTimesyncdClient)
        attack.evaluate(victim, observation_period=200)
        victim.stop()
        poisoner.stop()
        # Let the 150 s poisoned record expire, then boot a fresh client.
        testbed.run_for(300)
        fresh = testbed.add_client(SystemdTimesyncdClient)
        fresh.start()
        testbed.run_for(400)
        assert abs(fresh.clock_error()) < 1.0


class TestRunTimeEndToEnd:
    def test_full_run_time_attack_against_ntpd(self):
        testbed = build_testbed(TestbedConfig(pool_size=32, seed=74))
        config = NtpdClient.default_config()
        config.pool_domains = ["pool.ntp.org"]
        config.desired_associations = 4
        config.min_associations = 3
        config.poll_interval = 32.0
        config.unreachable_after = 4
        config.step_delay = 120.0
        victim = testbed.add_client(NtpdClient, config=config)
        victim.start()
        testbed.run_for(600)
        assert abs(victim.clock_error()) < 1.0

        attack = RunTimeAttack(
            testbed.attacker,
            testbed.simulator,
            testbed.resolver,
            victim,
            scenario=RunTimeScenario.P1_KNOWN_SERVERS,
            known_server_list=testbed.pool.addresses,
            check_interval=30.0,
            max_duration=3600.0 * 2,
        )
        result = attack.run()
        assert result.success
        assert result.attack_duration_minutes < 120
        # The attack's DNS step redirected the client to attacker servers.
        assert victim.synchronised_to(testbed.attacker.controlled_addresses)

    def test_attack_aborts_cleanly_when_it_cannot_succeed(self):
        testbed = build_testbed(TestbedConfig(pool_size=32, seed=75, pool_rate_limit_fraction=0.0))
        config = NtpdClient.default_config()
        config.pool_domains = ["pool.ntp.org"]
        config.poll_interval = 32.0
        victim = testbed.add_client(NtpdClient, config=config)
        victim.start()
        testbed.run_for(600)
        attack = RunTimeAttack(
            testbed.attacker,
            testbed.simulator,
            testbed.resolver,
            victim,
            known_server_list=testbed.pool.addresses,
            check_interval=60.0,
            max_duration=1800.0,
        )
        result = attack.run()
        assert not result.success
        assert result.attack_duration is None
        assert abs(victim.clock_error()) < 1.0


class TestChronosEndToEnd:
    def test_chronos_attack_through_resolver_cache(self):
        testbed = build_testbed(TestbedConfig(pool_size=160, seed=76))
        victim = testbed.add_chronos_client(
            config=ChronosConfig(
                pool_generation=PoolGenerationConfig(lookup_interval=300.0, total_lookups=24),
                servers_per_round=11,
                poll_interval=150.0,
            )
        )
        attack = ChronosAttack(
            attacker=testbed.attacker,
            simulator=testbed.simulator,
            resolver=testbed.resolver,
            victim=victim,
        )
        result = attack.run(poison_after_lookups=8, observe_rounds=4)
        assert result.attacker_controls_pool
        assert result.success
        assert result.injected_addresses == 89
