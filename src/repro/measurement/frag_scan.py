"""Nameserver fragmentation / PMTUD scan (Figure 5, section VII-B).

The paper probes nameservers by sending an ICMP fragmentation-needed message
followed by a DNS query and observing whether (and how small) the response
fragments, while also checking whether the domain deploys DNSSEC.  A domain
is counted as *attackable* when it emits fragments **and** does not deploy
DNSSEC — those are the domains whose resolvers can be poisoned off-path with
the fragment-replacement technique.

The study runs against the synthetic popular-domain population; a second,
much smaller variant (:meth:`FragmentationScan.scan_pool_nameservers`) runs
against the 30 ``pool.ntp.org`` nameservers, reproducing the "16 of 30
fragment to 548 bytes or less, none support DNSSEC" result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.measurement.population import NameserverSpec

#: The MTU steps the paper's CDF (Figure 5) is plotted over.
FIGURE5_MTU_STEPS = (68, 292, 548, 1276, 1500)
#: The fragment-size threshold used for the pool-nameserver statement.
POOL_FRAGMENT_THRESHOLD = 548


@dataclass
class DomainScanResult:
    """Per-domain outcome of the PMTUD probe."""

    domain: str
    supports_dnssec: bool
    emits_fragments: bool
    min_fragment_size: int
    is_ntp_domain: bool = False

    @property
    def attackable(self) -> bool:
        """Fragmenting and unsigned: poisonable by off-path fragment injection."""
        return self.emits_fragments and not self.supports_dnssec


@dataclass
class FragmentationScanReport:
    """Aggregate result of the nameserver fragmentation scan."""

    domains_scanned: int
    fragmenting_no_dnssec: int
    dnssec_signed: int
    results: list[DomainScanResult] = field(default_factory=list)

    @property
    def attackable_fraction(self) -> float:
        """Fraction of domains vulnerable to fragmentation-based poisoning."""
        if self.domains_scanned == 0:
            return 0.0
        return self.fragmenting_no_dnssec / self.domains_scanned

    def fraction_fragmenting_to(self, size: int) -> float:
        """Among attackable domains: fraction fragmenting to <= ``size`` bytes."""
        attackable = [r for r in self.results if r.attackable]
        if not attackable:
            return 0.0
        return sum(1 for r in attackable if r.min_fragment_size <= size) / len(attackable)

    def ntp_domains(self) -> list[DomainScanResult]:
        """Results restricted to the NTP domains in the population."""
        return [r for r in self.results if r.is_ntp_domain]

    def signed_ntp_domains(self) -> list[str]:
        """The DNSSEC-signed NTP domains (the paper found exactly one)."""
        return [r.domain for r in self.ntp_domains() if r.supports_dnssec]


class FragmentationScan:
    """Runs the PMTUD probing methodology over a nameserver population."""

    def __init__(self, nameservers: list[NameserverSpec]) -> None:
        self.nameservers = nameservers

    @staticmethod
    def probe(spec: NameserverSpec) -> DomainScanResult:
        """Model one PMTUD probe against a nameserver.

        A nameserver that honours the spoofed ICMP fragmentation-needed
        message emits fragments no larger than its ``min_fragment_size``; one
        that ignores PMTUD never fragments, regardless of the advertised MTU.
        """
        return DomainScanResult(
            domain=spec.domain,
            supports_dnssec=spec.supports_dnssec,
            emits_fragments=spec.honors_pmtud,
            min_fragment_size=spec.min_fragment_size if spec.honors_pmtud else 1500,
            is_ntp_domain=spec.is_ntp_domain,
        )

    def run(self) -> FragmentationScanReport:
        """Probe every nameserver and aggregate."""
        results = [self.probe(spec) for spec in self.nameservers]
        return FragmentationScanReport(
            domains_scanned=len(results),
            fragmenting_no_dnssec=sum(1 for r in results if r.attackable),
            dnssec_signed=sum(1 for r in results if r.supports_dnssec),
            results=results,
        )

    def scan_pool_nameservers(self, nameservers: list[NameserverSpec] | None = None) -> dict:
        """The section VII-B sub-study on the pool.ntp.org nameservers.

        Probes the given nameservers (defaulting to the ``pool.ntp.org``
        entries of this scan's population) and returns the counts the paper
        reports: how many fragment to 548 bytes or below and how many serve a
        DNSSEC-signed zone (the paper found 16 of 30, and none, respectively).
        """
        chosen = nameservers or [s for s in self.nameservers if s.domain == "pool.ntp.org"]
        results = [self.probe(spec) for spec in chosen]
        fragmenting = sum(
            1
            for r in results
            if r.emits_fragments and r.min_fragment_size <= POOL_FRAGMENT_THRESHOLD
        )
        return {
            "nameservers": len(results),
            "fragment_below_548": fragmenting,
            "dnssec_signed": sum(1 for r in results if r.supports_dnssec),
        }


def fragment_size_cdf(
    report: FragmentationScanReport,
    mtu_steps: tuple[int, ...] = FIGURE5_MTU_STEPS,
) -> list[tuple[int, float]]:
    """The cumulative distribution plotted in Figure 5.

    For each MTU step, the fraction of attackable (fragmenting, unsigned)
    domains whose nameservers fragment down to that size or smaller.
    """
    return [(size, report.fraction_fragmenting_to(size)) for size in mtu_steps]


def cdf_series(report: FragmentationScanReport) -> tuple[np.ndarray, np.ndarray]:
    """A dense CDF over fragment sizes, for plotting or numeric comparison."""
    sizes = np.array(
        sorted(r.min_fragment_size for r in report.results if r.attackable), dtype=float
    )
    if sizes.size == 0:
        return np.array([]), np.array([])
    fractions = np.arange(1, sizes.size + 1) / sizes.size
    return sizes, fractions
