"""Table IV — pool.ntp.org caching state in open resolvers.

Runs the RD=0 cache-snooping methodology against the synthetic open-resolver
population and reproduces the per-name cached fractions (58 %–69 % across the
six probed names in the paper).
"""

from __future__ import annotations

from repro.measurement.cache_snooping import CacheSnoopingStudy, POOL_QUERY_NAMES
from repro.measurement.population import (
    PAPER_CACHED_FRACTIONS,
    ResolverPopulationParameters,
    generate_open_resolvers,
)
from repro.measurement.report import format_percentage, format_table


def run_study(size=40_000):
    resolvers = generate_open_resolvers(ResolverPopulationParameters(size=size))
    return CacheSnoopingStudy(resolvers).run()


def test_table4_cache_snooping(run_once):
    report = run_once(run_study)
    print()
    print(
        format_table(
            ["Query", "Cached", "Paper", "Cached #", "Not cached #"],
            [
                [
                    row.query,
                    format_percentage(row.cached_fraction),
                    format_percentage(PAPER_CACHED_FRACTIONS[row.query]),
                    row.cached_count,
                    row.not_cached_count,
                ]
                for row in report.rows
            ],
            title="Table IV — pool.ntp.org caching state in tested open resolvers",
        )
    )
    assert report.resolvers_verified > 0.15 * report.resolvers_probed
    for query in POOL_QUERY_NAMES:
        row = report.row(query)
        assert abs(row.cached_fraction - PAPER_CACHED_FRACTIONS[query]) < 0.04
    fractions = {row.query: row.cached_fraction for row in report.rows}
    assert max(fractions, key=fractions.get) == "pool.ntp.org/A"
    # Fragment acceptance among NTP-serving resolvers: ~32 % (section VIII-A2).
    assert abs(report.fragment_acceptance_among_ntp_resolvers() - 0.32) < 0.04
