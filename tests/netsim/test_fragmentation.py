"""Tests for IPv4 fragmentation and reassembly."""

import pytest

from repro.netsim.errors import FragmentationError
from repro.netsim.fragmentation import (
    MINIMUM_IPV4_MTU,
    fragment_packet,
    fragments_complete,
    reassemble_fragments,
)
from repro.netsim.packet import IPProtocol, IPv4Packet


def make_packet(size: int = 1200, **overrides) -> IPv4Packet:
    defaults = dict(
        src="10.0.0.1",
        dst="10.0.0.2",
        protocol=IPProtocol.UDP,
        payload=bytes(range(256)) * (size // 256 + 1),
    )
    defaults["payload"] = defaults["payload"][:size]
    defaults.update(overrides)
    return IPv4Packet(**defaults)


class TestFragmentation:
    def test_no_fragmentation_when_packet_fits(self):
        packet = make_packet(size=100)
        assert fragment_packet(packet, 1500) == [packet]

    def test_fragments_respect_mtu(self):
        packet = make_packet(size=1200)
        fragments = fragment_packet(packet, 296)
        assert all(f.total_length <= 296 for f in fragments)

    def test_all_but_last_fragment_payloads_are_multiples_of_8(self):
        fragments = fragment_packet(make_packet(size=1000), 300)
        for fragment in fragments[:-1]:
            assert len(fragment.payload) % 8 == 0

    def test_mf_flag_set_on_all_but_last(self):
        fragments = fragment_packet(make_packet(size=1000), 296)
        assert all(f.more_fragments for f in fragments[:-1])
        assert not fragments[-1].more_fragments

    def test_offsets_are_contiguous(self):
        fragments = fragment_packet(make_packet(size=1000), 296)
        expected = 0
        for fragment in fragments:
            assert fragment.fragment_offset == expected
            expected += len(fragment.payload) // 8

    def test_minimum_mtu_produces_many_fragments(self):
        fragments = fragment_packet(make_packet(size=500), MINIMUM_IPV4_MTU)
        assert len(fragments) > 5

    def test_df_bit_prevents_fragmentation(self):
        packet = make_packet(size=1200, dont_fragment=True)
        with pytest.raises(FragmentationError):
            fragment_packet(packet, 296)

    def test_mtu_below_minimum_rejected(self):
        with pytest.raises(FragmentationError):
            fragment_packet(make_packet(), 60)

    def test_fragments_share_reassembly_key(self):
        packet = make_packet(size=1000, ipid=77)
        keys = {f.fragment_key for f in fragment_packet(packet, 296)}
        assert keys == {packet.fragment_key}


class TestReassembly:
    def test_round_trip(self):
        packet = make_packet(size=1111, ipid=5)
        fragments = fragment_packet(packet, 296)
        reassembled = reassemble_fragments(fragments)
        assert reassembled.payload == packet.payload
        assert not reassembled.is_fragment

    def test_round_trip_out_of_order(self):
        packet = make_packet(size=900, ipid=5)
        fragments = fragment_packet(packet, 296)
        reassembled = reassemble_fragments(list(reversed(fragments)))
        assert reassembled.payload == packet.payload

    def test_missing_first_fragment_rejected(self):
        fragments = fragment_packet(make_packet(size=900), 296)[1:]
        with pytest.raises(FragmentationError):
            reassemble_fragments(fragments)

    def test_missing_last_fragment_rejected(self):
        fragments = fragment_packet(make_packet(size=900), 296)[:-1]
        with pytest.raises(FragmentationError):
            reassemble_fragments(fragments)

    def test_hole_rejected(self):
        fragments = fragment_packet(make_packet(size=1200), 296)
        assert len(fragments) >= 4
        with_hole = [fragments[0], fragments[2], fragments[3], fragments[-1]]
        with pytest.raises(FragmentationError):
            reassemble_fragments(with_hole)

    def test_mixed_keys_rejected(self):
        a = fragment_packet(make_packet(size=600, ipid=1), 296)
        b = fragment_packet(make_packet(size=600, ipid=2), 296)
        with pytest.raises(FragmentationError):
            reassemble_fragments([a[0], b[1]])

    def test_replaced_second_fragment_wins(self):
        """The attack's primitive: a substituted tail ends up in the packet."""
        packet = make_packet(size=600, ipid=9)
        fragments = fragment_packet(packet, 296)
        spoofed_payload = bytes([0xEE]) * len(fragments[1].payload)
        spoofed = fragments[1].copy(payload=spoofed_payload)
        reassembled = reassemble_fragments([fragments[0], spoofed] + fragments[2:])
        assert spoofed_payload in reassembled.payload

    def test_empty_list_rejected(self):
        with pytest.raises(FragmentationError):
            reassemble_fragments([])


class TestFragmentsComplete:
    def test_complete_train(self):
        fragments = fragment_packet(make_packet(size=900), 296)
        assert fragments_complete(fragments)

    def test_incomplete_train(self):
        fragments = fragment_packet(make_packet(size=900), 296)
        assert not fragments_complete(fragments[:-1])
        assert not fragments_complete(fragments[1:])

    def test_empty(self):
        assert not fragments_complete([])
